package setupsched

// Benchmark harness regenerating the paper's evaluation artifacts:
//
//   - BenchmarkTable1_* has one benchmark per row of Table 1 (the paper's
//     algorithm overview), measuring the running time of each algorithm
//     across instance sizes; near-constant ns/job across sizes confirms
//     the near-linear bounds.
//   - BenchmarkFigure*_ benchmarks the constructions behind each figure.
//   - BenchmarkDual_* measures a single O(n) dual test per variant.
//   - BenchmarkAblation_* quantifies the design choices called out in
//     DESIGN.md (run compression for huge m, probe counts of the searches).
//
// Run with:  go test -bench=. -benchmem .

import (
	"context"
	"testing"

	"setupsched/internal/core"
	"setupsched/internal/expt"
	"setupsched/sched"
	"setupsched/schedgen"
)

func benchInstance(n int) *Instance {
	classes := n / 8
	if classes < 1 {
		classes = 1
	}
	return schedgen.Uniform(schedgen.Params{
		M: int64(n/50 + 1), Classes: classes, JobsPer: 8,
		MaxSetup: 1000, MaxJob: 1000, Seed: int64(n),
	})
}

var benchSizes = []struct {
	name string
	n    int
}{
	{"n=1e3", 1000},
	{"n=1e4", 10000},
	{"n=1e5", 100000},
}

func benchAlgo(b *testing.B, name string) {
	var algo expt.Algo
	for _, a := range expt.Algorithms() {
		if a.Name == name {
			algo = a
		}
	}
	if algo.Run == nil {
		b.Fatalf("unknown algorithm %q", name)
	}
	for _, sz := range benchSizes {
		in := benchInstance(sz.n)
		p := core.Prepare(in)
		b.Run(sz.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := algo.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1, splittable row ---

func BenchmarkTable1_Splittable_2Approx(b *testing.B) { benchAlgo(b, "split/2approx") }
func BenchmarkTable1_Splittable_Eps(b *testing.B)     { benchAlgo(b, "split/eps") }
func BenchmarkTable1_Splittable_Jump(b *testing.B)    { benchAlgo(b, "split/jump") }

// --- Table 1, non-preemptive row ---

func BenchmarkTable1_NonPreemptive_2Approx(b *testing.B)   { benchAlgo(b, "nonp/2approx") }
func BenchmarkTable1_NonPreemptive_Eps(b *testing.B)       { benchAlgo(b, "nonp/eps") }
func BenchmarkTable1_NonPreemptive_BinSearch(b *testing.B) { benchAlgo(b, "nonp/binsearch") }

// --- Table 1, preemptive row ---

func BenchmarkTable1_Preemptive_2Approx(b *testing.B) { benchAlgo(b, "pmtn/2approx") }
func BenchmarkTable1_Preemptive_Eps(b *testing.B)     { benchAlgo(b, "pmtn/eps") }
func BenchmarkTable1_Preemptive_Jump(b *testing.B)    { benchAlgo(b, "pmtn/jump") }

// --- The O(n) dual tests underlying Theorems 4, 7 and 9 ---

func BenchmarkDual_Splittable(b *testing.B) {
	in := benchInstance(100000)
	p := core.Prepare(in)
	T := p.TMin(sched.Splittable).MulInt(5).DivInt(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EvalSplit(T, nil)
	}
}

func BenchmarkDual_Preemptive(b *testing.B) {
	in := benchInstance(100000)
	p := core.Prepare(in)
	T := p.TMin(sched.Preemptive).MulInt(5).DivInt(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EvalPmtn(T, nil)
	}
}

func BenchmarkDual_NonPreemptive(b *testing.B) {
	in := benchInstance(100000)
	p := core.Prepare(in)
	T := p.TMin(sched.NonPreemptive).MulInt(5).DivInt(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EvalNonp(T)
	}
}

// --- Figures: one benchmark per construction shown in the paper ---

// Figure 1: the splittable construction (expensive wrap + cheap wrap).
func BenchmarkFigure1_SplittableBuild(b *testing.B) {
	in := benchInstance(20000)
	p := core.Prepare(in)
	T := sched.R(in.N() / in.M * 2)
	ev := p.EvalSplit(T, nil)
	if !ev.OK {
		b.Fatalf("guess rejected: %s", ev.Reason)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.BuildSplit(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 2/5: the preemptive nice-instance construction.
func BenchmarkFigure2_NiceInstanceBuild(b *testing.B) {
	in := schedgen.ExpensiveSetups(schedgen.Params{M: 600, Classes: 500, JobsPer: 6, MaxSetup: 1000, MaxJob: 200, Seed: 5})
	p := core.Prepare(in)
	res, err := p.SolvePmtnJump(core.Ctl{})
	if err != nil {
		b.Fatal(err)
	}
	ev := p.EvalPmtn(res.T, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.BuildPmtn(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 3/4: the preemptive general construction with large machines.
func BenchmarkFigure3_LargeMachinesBuild(b *testing.B) {
	in := schedgen.BigJobs(schedgen.Params{M: 64, Classes: 300, JobsPer: 6, MaxSetup: 300, MaxJob: 400, Seed: 6})
	p := core.Prepare(in)
	res, err := p.SolvePmtnJump(core.Ctl{})
	if err != nil {
		b.Fatal(err)
	}
	ev := p.EvalPmtn(res.T, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.BuildPmtn(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 6: raw Batch Wrapping throughput.
func BenchmarkFigure6_Wrap(b *testing.B) {
	in := benchInstance(100000)
	p := core.Prepare(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.TwoApproxSplit(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 7: the next-fit 2-approximation.
func BenchmarkFigure7_NextFit2Approx(b *testing.B) {
	in := benchInstance(100000)
	p := core.Prepare(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.TwoApproxNonPreemptive(sched.NonPreemptive); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 10-13: the non-preemptive Algorithm 6 construction.
func BenchmarkFigure10_NonpBuild(b *testing.B) {
	in := benchInstance(50000)
	p := core.Prepare(in)
	res, err := p.SolveNonpSearch(core.Ctl{})
	if err != nil {
		b.Fatal(err)
	}
	ev := p.EvalNonp(res.T)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.BuildNonp(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-family datapoints over the schedgen catalog ---
//
// One sub-benchmark per adversarial family at a fixed mid size, for each
// exact 3/2 search.  These are the BENCH trajectory's per-family series:
// a regression in one structural regime (say nearhalf's J+ churn or
// msweep's run compression) shows up as that family's datapoint moving
// while the others hold still.

func benchFamilyInstance(f schedgen.Family) *Instance {
	return f.Make(schedgen.Params{
		M: 64, Classes: 1000, JobsPer: 8, MaxSetup: 500, MaxJob: 800, Seed: 1,
	})
}

func benchFamilies(b *testing.B, run func(*core.Prep) (*core.Result, error)) {
	for _, fam := range schedgen.Families {
		in := benchFamilyInstance(fam)
		p := core.Prepare(in)
		b.Run(fam.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFamilies_SplitJump(b *testing.B) {
	benchFamilies(b, func(p *core.Prep) (*core.Result, error) { return p.SolveSplitJump(core.Ctl{}) })
}

func BenchmarkFamilies_PmtnJump(b *testing.B) {
	benchFamilies(b, func(p *core.Prep) (*core.Result, error) { return p.SolvePmtnJump(core.Ctl{}) })
}

func BenchmarkFamilies_NonpSearch(b *testing.B) {
	benchFamilies(b, func(p *core.Prep) (*core.Result, error) { return p.SolveNonpSearch(core.Ctl{}) })
}

// --- Ablations ---

// Run compression: the splittable solver on a cluster of one million
// machines must not be slower than on a thousand (Theorem 7's O(n + c)
// construction relies on machine-configuration multiplicities).
func BenchmarkAblation_RunCompression_m1e3(b *testing.B) { benchSplitHugeM(b, 1_000) }
func BenchmarkAblation_RunCompression_m1e6(b *testing.B) { benchSplitHugeM(b, 1_000_000) }

func benchSplitHugeM(b *testing.B, m int64) {
	in := schedgen.Uniform(schedgen.Params{M: m, Classes: 200, JobsPer: 8, MaxSetup: 50, MaxJob: 100, Seed: 1})
	p := core.Prepare(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveSplitJump(core.Ctl{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Probe economy: Class Jumping needs O(log) dual tests; the eps-search
// needs O(log 1/eps).  This benchmark pins their relative cost.
func BenchmarkAblation_JumpVsEps_Jump(b *testing.B) {
	in := benchInstance(50000)
	p := core.Prepare(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveSplitJump(core.Ctl{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_JumpVsEps_Eps(b *testing.B) {
	in := benchInstance(50000)
	p := core.Prepare(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveEps(core.Ctl{}, sched.Splittable, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel engine: speculative probing and SolveAll fan-out ---
//
// The serial/parallel pairs below are the wall-clock datapoints behind
// BENCH_core.json (see cmd/schedbench -json).  The instance shape is
// machine-rich and setup-dominated so every search genuinely probes
// (~10-24 dual tests); on a single-core box the parallel variants pay
// goroutine overhead without a win — compare the pairs on GOMAXPROCS > 1.

func benchSearchyInstance(n int) *Instance {
	classes := n / 8
	if classes < 1 {
		classes = 1
	}
	return schedgen.ExpensiveSetups(schedgen.Params{
		M: int64(n/10 + 1), Classes: classes, JobsPer: 8,
		MaxSetup: 500, MaxJob: 60, Seed: int64(n),
	})
}

func benchSpeculativeNonp(b *testing.B, k int) {
	p := core.Prepare(benchSearchyInstance(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveNonpSearch(core.Ctl{Parallelism: k}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel_NonpSearch_Serial(b *testing.B) { benchSpeculativeNonp(b, 1) }
func BenchmarkParallel_NonpSearch_Spec4(b *testing.B)  { benchSpeculativeNonp(b, 4) }

func benchSpeculativeEps(b *testing.B, k int) {
	p := core.Prepare(benchSearchyInstance(100000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveEps(core.Ctl{Parallelism: k}, sched.Preemptive, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel_EpsSearch_Serial(b *testing.B) { benchSpeculativeEps(b, 1) }
func BenchmarkParallel_EpsSearch_Spec4(b *testing.B)  { benchSpeculativeEps(b, 4) }

func benchSolveAll(b *testing.B, par int) {
	s, err := NewSolver(benchSearchyInstance(100000))
	if err != nil {
		b.Fatal(err)
	}
	opts := []Option{}
	if par > 1 {
		opts = append(opts, WithParallelism(par))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rrs, err := s.SolveAll(context.Background(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		for _, rr := range rrs {
			if rr.Err != nil {
				b.Fatal(rr.Err)
			}
		}
	}
}

func BenchmarkParallel_SolveAll_Serial(b *testing.B)  { benchSolveAll(b, 1) }
func BenchmarkParallel_SolveAll_Fanout4(b *testing.B) { benchSolveAll(b, 4) }
func BenchmarkParallel_SolveAll_Fanout9(b *testing.B) { benchSolveAll(b, 9) }

// End-to-end Solve through the public API (includes validation-free path).
func BenchmarkSolveFacade(b *testing.B) {
	in := benchInstance(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in, NonPreemptive, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Solver reuse vs one-shot: the one-shot facade re-validates and
// re-prepares the instance on every call; a reused Solver pays both once.
// This pair quantifies the gap the Solver API exists to close (the
// serving layer's repeated-traffic hot path).
func BenchmarkSolverOneShotPerCall(b *testing.B) {
	in := benchInstance(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(in)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(context.Background(), NonPreemptive); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverReuse(b *testing.B) {
	in := benchInstance(10000)
	s, err := NewSolver(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(context.Background(), NonPreemptive); err != nil {
			b.Fatal(err)
		}
	}
}

// Repeated dual tests are where preparation reuse pays most: a rejected
// probe is one O(n) evaluation with no schedule construction, so the
// legacy free function spends about half its time re-validating and
// re-preparing the instance.  The guess below is under the trivial bound
// and always rejected.
func BenchmarkDualTestOneShot(b *testing.B) {
	in := benchInstance(10000)
	T := sched.R(in.N() / in.M / 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DualTest(in, NonPreemptive, T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDualTestReuse(b *testing.B) {
	in := benchInstance(10000)
	s, err := NewSolver(in)
	if err != nil {
		b.Fatal(err)
	}
	T := sched.R(in.N() / in.M / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DualTest(context.Background(), NonPreemptive, T); err != nil {
			b.Fatal(err)
		}
	}
}
