GO ?= go

.PHONY: all build test vet bench serve clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Root benchmarks reproduce the paper's Table 1 / figure measurements;
# ./serve benchmarks track the serving layer's hot path (cache hit vs
# cold solve).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . ./serve

serve:
	$(GO) run ./cmd/schedserve

clean:
	$(GO) clean ./...
