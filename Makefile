GO ?= go

.PHONY: all build test test-race vet bench bench-smoke bench-json fuzz-smoke stress-smoke stream-smoke metrics-smoke loadtest-smoke trace-smoke quality-smoke quality-json serve clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shared Solvers serve concurrent requests; the race detector must stay
# clean over the whole tree.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Root benchmarks reproduce the paper's Table 1 / figure measurements;
# ./serve benchmarks track the serving layer's hot path (cache hit vs
# cold solve).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . ./serve

# One iteration of every serving-path and Solver-API benchmark: catches
# regressions (a benchmark that no longer compiles or panics) in CI
# without paying for full measurement runs.
bench-smoke:
	$(GO) test -bench='SolveCold|SolveHit|Fingerprint|HTTPSolve' -benchtime=1x -run=^$$ ./serve
	$(GO) test -bench='SolverReuse|SolverOneShotPerCall|DualTest|SolveFacade|Parallel_' -benchtime=1x -run=^$$ .
	$(GO) test -bench='Session_' -benchtime=1x -run=^$$ ./stream
	$(GO) test -bench='EvalNonp' -benchtime=1x -run=^$$ ./internal/core

# Regenerate the machine-readable performance-trajectory baseline
# (parallel engine vs serial path; see README "Performance tracking").
BENCH_SIZES ?= 1000,10000,100000
BENCH_REPS  ?= 3
BENCH_PAR   ?= 4
bench-json:
	$(GO) run ./cmd/schedbench -json -sizes $(BENCH_SIZES) -reps $(BENCH_REPS) \
		-parallelism $(BENCH_PAR) -o BENCH_core.json
	$(GO) run ./cmd/schedbench -validate BENCH_core.json

# Short fuzz sessions on the canonicalization/verification trust
# boundaries and the incremental session engine.  The native fuzzer
# allows one -fuzz target per invocation.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFingerprintCanonicalRoundTrip -fuzztime=$(FUZZTIME) ./sched
	$(GO) test -run='^$$' -fuzz=FuzzVerifySchedule -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzSessionDeltas -fuzztime=$(FUZZTIME) ./stream
	$(GO) test -run='^$$' -fuzz=FuzzExactSandwich -fuzztime=$(FUZZTIME) ./internal/exact

# A short differential soak: every schedgen family through all nine
# algorithms with guarantee checking (see cmd/schedstress).
stress-smoke:
	$(GO) run ./cmd/schedstress -families all -seeds 10 -duration 10s

# The streaming session layer's smoke: race-checked session tests plus a
# drift-trace soak asserting incremental-vs-fresh bit-identity.
stream-smoke:
	$(GO) test -race ./stream
	$(GO) run ./cmd/schedstress -drift -seeds 10

# End-to-end observability smoke: start schedserve, run one solve, scrape
# GET /metrics, and validate the exposition syntax with the obs package's
# own parser (TestValidateExpositionFile reads the scrape file).
METRICS_ADDR ?= 127.0.0.1:19131
metrics-smoke:
	$(GO) build -o .metrics-smoke-serve ./cmd/schedserve
	@set -e; \
	./.metrics-smoke-serve -addr $(METRICS_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; rm -f .metrics-smoke-serve .metrics-smoke-scrape' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://$(METRICS_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -sf http://$(METRICS_ADDR)/v1/solve -d '{"instance":{"m":3,"classes":[{"setup":4,"jobs":[7,2,5]},{"setup":1,"jobs":[3,3]}]}}' >/dev/null; \
	curl -sf http://$(METRICS_ADDR)/metrics > .metrics-smoke-scrape; \
	grep -q '^sched_requests_total{kind="solve"} 1' .metrics-smoke-scrape; \
	grep -q '^sched_solve_duration_seconds_count 1' .metrics-smoke-scrape; \
	SCHED_METRICS_FILE=$$PWD/.metrics-smoke-scrape $(GO) test -count=1 -run TestValidateExpositionFile ./obs; \
	echo "metrics-smoke: ok"

# Distributed-serving smoke: build the real schedserve and schedlb
# binaries, launch a 3-shard fleet (plus a 1-shard baseline) behind the
# proxy, drive a short mixed solve/session workload, and fail on any
# routing error (schedload exits nonzero and refuses to write a report
# that records one).  Also validates the committed BENCH_serve.json.
LOADTEST_DURATION ?= 5s
LOADTEST_RPS ?= 40
loadtest-smoke:
	mkdir -p bin
	$(GO) build -o bin/schedserve ./cmd/schedserve
	$(GO) build -o bin/schedlb ./cmd/schedlb
	$(GO) run ./cmd/schedload -shards 1,3 -duration $(LOADTEST_DURATION) \
		-rps $(LOADTEST_RPS) -serve-bin bin/schedserve -lb-bin bin/schedlb \
		-out /tmp/bench_serve.json
	$(GO) run ./cmd/schedload -validate /tmp/bench_serve.json
	$(GO) run ./cmd/schedload -validate BENCH_serve.json
	@echo "loadtest-smoke: ok"

# Distributed-tracing smoke: build the real schedserve and schedlb
# binaries, launch a 2-shard fleet behind the proxy, drive traced solves
# (one sampled W3C trace context each), then join both tiers' flight
# recorders (GET /v1/debug/traces) by trace id.  Fails unless every
# trace joined, landed on exactly its ring-predicted shard, and its
# per-segment attribution sums to within 5% of the measured end-to-end
# latency.
TRACE_REQUESTS ?= 120
trace-smoke:
	mkdir -p bin
	$(GO) build -o bin/schedserve ./cmd/schedserve
	$(GO) build -o bin/schedlb ./cmd/schedlb
	$(GO) run ./cmd/schedload -shards 2 -trace-report -trace-requests $(TRACE_REQUESTS) \
		-serve-bin bin/schedserve -lb-bin bin/schedlb
	@echo "trace-smoke: ok"

# Approximation-quality smoke: validate the committed BENCH_quality.json
# (schema + every recorded worst ratio within its paper guarantee, exact
# rational compare), then re-sweep a seed subset with the current binary
# and fail if any family's worst measured ratio regressed against the
# committed baseline (see cmd/schedquality).
QUALITY_SEEDS ?= 4
quality-smoke:
	$(GO) run ./cmd/schedquality -validate BENCH_quality.json
	$(GO) run ./cmd/schedquality -gate -baseline BENCH_quality.json -seeds $(QUALITY_SEEDS)
	@echo "quality-smoke: ok"

# Regenerate the committed approximation-quality baseline (full seed
# sweep; see README "Approximation quality").
quality-json:
	$(GO) run ./cmd/schedquality -seeds 12 -workers 8 -o BENCH_quality.json
	$(GO) run ./cmd/schedquality -validate BENCH_quality.json

serve:
	$(GO) run ./cmd/schedserve

clean:
	$(GO) clean ./...
