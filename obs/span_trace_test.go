package obs

import (
	"encoding/json"
	"testing"

	"setupsched/sched"
)

// collectSpans flattens a tree depth-first.
func collectSpans(root *Span) []*Span {
	out := []*Span{root}
	for _, c := range root.Children {
		out = append(out, collectSpans(c)...)
	}
	return out
}

func TestSpanRecorderRemoteParent(t *testing.T) {
	src := NewIDSource(11)
	parent := src.NewTrace()   // the lb's wire context
	local := src.Child(parent) // this process's root span id

	r := NewSpanRecorder()
	r.Trace(local, parent.SpanID)
	done := r.StartPhase("prepare")
	done()
	r.ProbeStarted(sched.R(3))
	r.ProbeFinished(sched.R(3), false)
	r.ProbeStarted(sched.R(5))
	r.ProbeFinished(sched.R(5), true)
	r.SearchFinished("split-jump", 2)
	root := r.Root()

	if root.TraceID != local.TraceID.String() {
		t.Fatalf("root trace id %q, want %q", root.TraceID, local.TraceID)
	}
	if root.SpanID != local.SpanID.String() {
		t.Fatalf("root span id %q, want %q", root.SpanID, local.SpanID)
	}
	if root.Parent != parent.SpanID.String() {
		t.Fatalf("root parent %q, want remote %q", root.Parent, parent.SpanID)
	}

	all := collectSpans(root)
	ids := map[string]bool{}
	for _, sp := range all {
		if sp.SpanID == "" {
			t.Fatalf("span %q has no id in a traced tree", sp.Name)
		}
		if ids[sp.SpanID] {
			t.Fatalf("duplicate span id %s on %q", sp.SpanID, sp.Name)
		}
		ids[sp.SpanID] = true
		if sp != root && sp.Parent == "" {
			t.Fatalf("child %q has no parent id", sp.Name)
		}
	}
	// Children reference ids that exist in the tree.
	for _, sp := range all[1:] {
		if !ids[sp.Parent] {
			t.Fatalf("span %q parent %s not in tree", sp.Name, sp.Parent)
		}
	}
}

func TestTracedSpanTreeEncodeDecodeRoundTrip(t *testing.T) {
	src := NewIDSource(21)
	tc := src.NewTrace()
	r := NewSpanRecorder()
	r.Trace(tc, SpanID{})
	r.ProbeStarted(sched.R(2))
	r.ProbeFinished(sched.R(2), true)
	r.SearchFinished("jump", 1)
	root := r.Root()

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != tc.TraceID.String() || back.SpanID != tc.SpanID.String() {
		t.Fatalf("root ids lost: trace=%q span=%q", back.TraceID, back.SpanID)
	}
	if back.Parent != "" {
		t.Fatalf("local root grew a parent: %q", back.Parent)
	}
	ids := map[string]bool{}
	for _, sp := range collectSpans(&back) {
		if sp.SpanID == "" || ids[sp.SpanID] {
			t.Fatalf("decoded tree has missing/duplicate span id on %q", sp.Name)
		}
		ids[sp.SpanID] = true
	}
}

func TestSpanRecorderDeterministicChildIDs(t *testing.T) {
	build := func() *Span {
		src := NewIDSource(5)
		r := NewSpanRecorder()
		r.Trace(src.NewTrace(), SpanID{})
		r.StartPhase("prepare")()
		r.ProbeStarted(sched.R(1))
		r.ProbeFinished(sched.R(1), true)
		r.SearchFinished("jump", 1)
		return r.Root()
	}
	a, b := collectSpans(build()), collectSpans(build())
	if len(a) != len(b) {
		t.Fatalf("tree shapes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SpanID != b[i].SpanID {
			t.Fatalf("seeded ids diverged at %q: %s vs %s", a[i].Name, a[i].SpanID, b[i].SpanID)
		}
	}
}

func TestUntracedRecorderStaysPlain(t *testing.T) {
	r := NewSpanRecorder()
	r.ProbeStarted(sched.R(2))
	r.ProbeFinished(sched.R(2), true)
	r.SearchFinished("jump", 1)
	for _, sp := range collectSpans(r.Root()) {
		if sp.TraceID != "" || sp.SpanID != "" || sp.Parent != "" {
			t.Fatalf("untraced span %q carries trace fields", sp.Name)
		}
	}
	// Trace with an invalid context is a no-op, not a panic.
	r2 := NewSpanRecorder()
	r2.Trace(TraceContext{}, SpanID{})
	r2.SearchFinished("jump", 0)
	if r2.Root().TraceID != "" {
		t.Fatal("invalid context bound anyway")
	}
}
