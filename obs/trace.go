package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Distributed trace identity, W3C Trace Context compatible: a request
// entering the fleet gets a 128-bit trace id that every process it
// touches shares, each process's span tree hangs off the caller's span
// id, and the whole chain rides the standard `traceparent` header
// (version 00).  The schedlb front tier opens the root, schedserve
// shards extract it and parent their handler/solve trees under the
// proxy's upstream span, and the flight recorders on both sides key
// their rings by the shared trace id — one join key from the client's
// request to the innermost dual-approximation probe.

// TraceID is the 128-bit trace identity shared by every span of one
// distributed request.  The all-zero id is invalid per the W3C spec.
type TraceID [16]byte

// String returns the canonical 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is the 64-bit identity of one span within a trace.  The
// all-zero id is invalid per the W3C spec.
type SpanID [8]byte

// String returns the canonical 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// TraceContext identifies one position in a distributed trace: the
// trace the request belongs to, the span the current operation runs
// under, and whether the trace is sampled (recorded).  The zero value
// is "not traced"; check Valid before propagating.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context carries usable (nonzero) ids.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// TraceParent renders the W3C traceparent header value:
// 00-<trace-id>-<span-id>-<flags> with flags 01 when sampled.
func (tc TraceContext) TraceParent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID.String() + "-" + tc.SpanID.String() + "-" + flags
}

// TraceParentHeader is the W3C Trace Context propagation header.
const TraceParentHeader = "traceparent"

// ParseTraceParent parses a W3C traceparent value.  Unknown versions
// are accepted if they keep the version-00 field layout (per the spec's
// forward-compatibility rule); zero ids are rejected.
func ParseTraceParent(s string) (TraceContext, error) {
	var tc TraceContext
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if s[0] == 'f' && s[1] == 'f' {
		return tc, fmt.Errorf("obs: invalid traceparent version %q", s[:2])
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, fmt.Errorf("obs: bad trace id in %q: %w", s, err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, fmt.Errorf("obs: bad span id in %q: %w", s, err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("obs: bad trace flags in %q: %w", s, err)
	}
	tc.Sampled = flags[0]&1 == 1
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: zero trace or span id in %q", s)
	}
	return tc, nil
}

// InjectTrace writes the context into the traceparent header of an
// outgoing request.
func InjectTrace(h http.Header, tc TraceContext) {
	if tc.Valid() {
		h.Set(TraceParentHeader, tc.TraceParent())
	}
}

// TraceFromHeader extracts the trace context of an incoming request.
// The second result is false when the header is absent or malformed —
// the request is then simply untraced, never an error.
func TraceFromHeader(h http.Header) (TraceContext, bool) {
	v := h.Get(TraceParentHeader)
	if v == "" {
		return TraceContext{}, false
	}
	tc, err := ParseTraceParent(v)
	if err != nil {
		return TraceContext{}, false
	}
	return tc, true
}

// IDSource generates trace and span ids from a deterministic SplitMix64
// stream behind one atomic counter: id generation is lock-free and
// allocation-free, and a seeded source makes ids reproducible for
// tests.  The zero value is a valid source seeded with 0; NewIDSource
// picks the seed explicitly.
type IDSource struct {
	state atomic.Uint64
}

// NewIDSource returns a source whose id sequence is a pure function of
// seed.
func NewIDSource(seed uint64) *IDSource {
	s := &IDSource{}
	s.state.Store(seed)
	return s
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same
// mix the shard ring uses, so id quality matches the hashing tier.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next returns one nonzero 64-bit id.
func (s *IDSource) next() uint64 {
	for {
		v := splitmix64(s.state.Add(1))
		if v != 0 {
			return v
		}
	}
}

// NewTrace opens a fresh sampled root context: new trace id, new span
// id.
func (s *IDSource) NewTrace() TraceContext {
	var tc TraceContext
	binary.BigEndian.PutUint64(tc.TraceID[:8], s.next())
	binary.BigEndian.PutUint64(tc.TraceID[8:], s.next())
	binary.BigEndian.PutUint64(tc.SpanID[:], s.next())
	tc.Sampled = true
	return tc
}

// Child derives a context for a child span: same trace id and sampled
// flag, fresh span id.
func (s *IDSource) Child(parent TraceContext) TraceContext {
	tc := parent
	binary.BigEndian.PutUint64(tc.SpanID[:], s.next())
	return tc
}

// defaultIDSource backs the package-level helpers, seeded from
// crypto/rand at startup so independent processes never collide.
var defaultIDSource = func() *IDSource {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic("obs: seeding trace id source: " + err.Error())
	}
	return NewIDSource(binary.BigEndian.Uint64(b[:]))
}()

// NewTrace opens a fresh sampled root context from the process-global
// id source.
func NewTrace() TraceContext { return defaultIDSource.NewTrace() }

// ChildOf derives a child context from the process-global id source.
func ChildOf(parent TraceContext) TraceContext { return defaultIDSource.Child(parent) }
