package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): one `# HELP` / `# TYPE` header per
// family followed by its series, histograms as cumulative `_bucket{le=}`
// series plus `_sum` and `_count`.  When runtime metrics are enabled a
// Go runtime block (goroutines, heap, GC) is appended from a single
// runtime.ReadMemStats call per scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.families() {
		head := fam[0]
		if head.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", head.family, escapeHelp(head.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", head.family, typeName(head.kind))
		for _, m := range fam {
			switch m.kind {
			case kindCounter:
				writeSample(bw, m.family, m.labels, float64(m.c.Load()))
			case kindGauge:
				writeSample(bw, m.family, m.labels, float64(m.g.Load()))
			case kindGaugeFunc:
				writeSample(bw, m.family, m.labels, m.f())
			case kindHistogram:
				buckets, count, sum := m.h.Snapshot()
				for _, b := range buckets {
					le := "+Inf"
					if !math.IsInf(b.UpperBound, 1) {
						le = formatFloat(b.UpperBound)
					}
					writeSample(bw, m.family+"_bucket", mergeLabels(m.labels, `le="`+le+`"`), float64(b.Cumulative))
				}
				writeSample(bw, m.family+"_sum", m.labels, sum)
				writeSample(bw, m.family+"_count", m.labels, float64(count))
			}
		}
	}
	r.mu.Lock()
	rt := r.runtime
	r.mu.Unlock()
	if rt {
		writeRuntime(bw)
	}
	return bw.Flush()
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

func mergeLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeRuntime emits the Go runtime block: goroutine and GOMAXPROCS
// gauges, heap and GC counters from one ReadMemStats snapshot.
func writeRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE go_gomaxprocs gauge\ngo_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "# TYPE go_memstats_heap_alloc_bytes gauge\ngo_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# TYPE go_memstats_heap_objects gauge\ngo_memstats_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "# TYPE go_memstats_alloc_bytes_total counter\ngo_memstats_alloc_bytes_total %d\n", ms.TotalAlloc)
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %s\n",
		formatFloat(float64(ms.PauseTotalNs)/1e9))
}

// Handler returns an http.Handler serving the exposition at GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}

// ParseExposition parses Prometheus text exposition into a map from full
// series name (including any label block, normalized to the exact text
// between `{` and `}`) to value.  It validates the syntax the way the
// tests and the metrics-smoke target need: every sample line must be
// `name[{labels}] value`, every family referenced by a sample must have
// a preceding `# TYPE` line, and histogram families must expose
// consistent `_bucket`/`_sum`/`_count` series.
func ParseExposition(data []byte) (map[string]float64, error) {
	out := map[string]float64{}
	types := map[string]string{}
	lineno := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineno++
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineno, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value in %q: %w", lineno, line, err)
		}
		family, _, err := splitSeriesName(name)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		if _, ok := types[family]; !ok {
			base := family
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(family, suf) {
					base = strings.TrimSuffix(family, suf)
					break
				}
			}
			if _, ok := types[base]; !ok {
				return nil, fmt.Errorf("line %d: sample %s has no # TYPE line", lineno, family)
			}
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineno, name)
		}
		out[name] = v
	}
	if err := checkHistograms(out, types); err != nil {
		return nil, err
	}
	return out, nil
}

// splitSample splits a sample line into series name (with label block)
// and the remainder holding the value.
func splitSample(line string) (name, rest string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", fmt.Errorf("unbalanced label block in %q", line)
		}
		return line[:j+1], line[j+1:], nil
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return "", "", fmt.Errorf("sample without value: %q", line)
	}
	return line[:i], line[i:], nil
}

// checkHistograms asserts each declared histogram family has a _count
// and _sum per label set and that its bucket counts are cumulative
// (non-decreasing in le, with the +Inf bucket equal to _count).
func checkHistograms(samples map[string]float64, types map[string]string) error {
	for family, t := range types {
		if t != "histogram" {
			continue
		}
		// Collect buckets grouped by the label set minus le.
		type bucket struct {
			le float64
			v  float64
		}
		groups := map[string][]bucket{}
		for name, v := range samples {
			fam, labels, err := splitSeriesName(name)
			if err != nil || fam != family+"_bucket" {
				continue
			}
			le, rest, err := extractLE(labels)
			if err != nil {
				return fmt.Errorf("series %s: %w", name, err)
			}
			groups[rest] = append(groups[rest], bucket{le: le, v: v})
		}
		if len(groups) == 0 {
			return fmt.Errorf("histogram %s has no _bucket series", family)
		}
		for rest, bs := range groups {
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("histogram %s{%s} lacks le=\"+Inf\" bucket", family, rest)
			}
			for i := 1; i < len(bs); i++ {
				if bs[i].v < bs[i-1].v {
					return fmt.Errorf("histogram %s{%s} buckets not cumulative", family, rest)
				}
			}
			countName := family + "_count"
			if rest != "" {
				countName += "{" + rest + "}"
			}
			count, ok := samples[countName]
			if !ok {
				return fmt.Errorf("histogram %s{%s} lacks _count", family, rest)
			}
			if last.v != count {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != count %g", family, rest, last.v, count)
			}
			sumName := family + "_sum"
			if rest != "" {
				sumName += "{" + rest + "}"
			}
			if _, ok := samples[sumName]; !ok {
				return fmt.Errorf("histogram %s{%s} lacks _sum", family, rest)
			}
		}
	}
	return nil
}

// extractLE pulls the le label out of a label block, returning its value
// and the remaining labels in original order.
func extractLE(labels string) (le float64, rest string, err error) {
	var kept []string
	found := false
	for _, part := range splitLabels(labels) {
		if strings.HasPrefix(part, `le="`) && strings.HasSuffix(part, `"`) {
			raw := part[len(`le="`) : len(part)-1]
			if raw == "+Inf" {
				le, found = math.Inf(1), true
				continue
			}
			v, perr := strconv.ParseFloat(raw, 64)
			if perr != nil {
				return 0, "", fmt.Errorf("bad le value %q", raw)
			}
			le, found = v, true
			continue
		}
		kept = append(kept, part)
	}
	if !found {
		return 0, "", fmt.Errorf("bucket series lacks le label in {%s}", labels)
	}
	return le, strings.Join(kept, ","), nil
}

// splitLabels splits a label block on commas outside quoted values.
func splitLabels(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}

// ValidateExposition reports whether data is well-formed Prometheus text
// exposition by the same rules as ParseExposition.
func ValidateExposition(data []byte) error {
	_, err := ParseExposition(data)
	return err
}
