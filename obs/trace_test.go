package obs

import (
	"net/http"
	"strings"
	"testing"
)

func TestIDSourceDeterministic(t *testing.T) {
	a := NewIDSource(42)
	b := NewIDSource(42)
	for i := 0; i < 10; i++ {
		ta, tb := a.NewTrace(), b.NewTrace()
		if ta != tb {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, ta, tb)
		}
		if !ta.Valid() || !ta.Sampled {
			t.Fatalf("fresh trace not valid+sampled: %+v", ta)
		}
	}
	if NewIDSource(1).NewTrace() == NewIDSource(2).NewTrace() {
		t.Fatal("different seeds produced the same trace")
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	src := NewIDSource(7)
	root := src.NewTrace()
	child := src.Child(root)
	if child.TraceID != root.TraceID {
		t.Fatalf("child changed trace id: %v vs %v", child.TraceID, root.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child reused parent span id")
	}
	if child.Sampled != root.Sampled {
		t.Fatal("child changed sampled flag")
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tc := NewIDSource(99).NewTrace()
	hdr := tc.TraceParent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("unexpected header form %q", hdr)
	}
	got, err := ParseTraceParent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceParent(%q): %v", hdr, err)
	}
	if got != tc {
		t.Fatalf("round trip: %+v != %+v", got, tc)
	}

	tc.Sampled = false
	got, err = ParseTraceParent(tc.TraceParent())
	if err != nil || got.Sampled {
		t.Fatalf("unsampled round trip: %+v err=%v", got, err)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc",
		// zero trace id
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		// zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		// version ff is reserved-invalid
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		// non-hex trace id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
		// wrong separators
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, err := ParseTraceParent(s); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted", s)
		}
	}
	// Future version with the 00 layout is accepted (spec forward-compat).
	if _, err := ParseTraceParent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestInjectExtractHeader(t *testing.T) {
	h := http.Header{}
	if _, ok := TraceFromHeader(h); ok {
		t.Fatal("extract from empty header succeeded")
	}
	tc := NewIDSource(3).NewTrace()
	InjectTrace(h, tc)
	got, ok := TraceFromHeader(h)
	if !ok || got != tc {
		t.Fatalf("inject/extract: ok=%v got=%+v want=%+v", ok, got, tc)
	}
	h.Set(TraceParentHeader, "garbage")
	if _, ok := TraceFromHeader(h); ok {
		t.Fatal("malformed header extracted")
	}
	// Zero contexts must not be injected.
	h2 := http.Header{}
	InjectTrace(h2, TraceContext{})
	if h2.Get(TraceParentHeader) != "" {
		t.Fatal("invalid context was injected")
	}
}

func TestIDSourceUniqueness(t *testing.T) {
	src := NewIDSource(0)
	seen := map[SpanID]bool{}
	parent := src.NewTrace()
	seen[parent.SpanID] = true
	for i := 0; i < 1000; i++ {
		c := src.Child(parent)
		if seen[c.SpanID] {
			t.Fatalf("span id collision after %d children", i)
		}
		seen[c.SpanID] = true
	}
}
