// Package obs is the observability substrate of the setupsched stack: a
// zero-allocation metrics core (atomic counters, gauges and fixed-bucket
// latency histograms), a dependency-free Prometheus text-format
// exposition, solve-lifecycle span tracing built on the solver's
// Observer seam, and structured slow-solve diagnostics.
//
// # Metrics core
//
// Counter, Gauge and Histogram are standalone atomic types whose zero
// values are NOT ready for use only in the Histogram case (use
// NewHistogram); Counter and Gauge work as plain struct fields.  All
// recording operations (Add, Set, Observe) are lock-free and perform no
// heap allocations, so they are safe on the innermost probe loop of a
// solve.  A Registry names metrics and renders them; the same Counter
// can feed a Registry and any ad-hoc reader at once.
//
//	reg := obs.NewRegistry()
//	solves := reg.Counter("sched_solves_total", "Completed solves.")
//	lat := reg.Histogram("sched_solve_duration_seconds",
//	    "Solve wall-clock latency.", obs.DefaultLatencyBuckets()...)
//	...
//	solves.Add(1)
//	lat.Observe(elapsed.Seconds())
//	reg.WritePrometheus(w) // or http.Handle("/metrics", reg.Handler())
//
// # Span tracing
//
// A SpanRecorder implements the solver's probe-level Observer interface
// and assembles a hierarchical trace of one solve — the three phases of
// the Deppert–Jansen near-linear algorithms: prepare (the O(n) pass),
// search (the dual-approximation probe sequence, one child span per
// probe) and build (schedule construction after the final accepted
// guess).  See SpanRecorder for the JSON shape and NewSpanRecorder for
// wiring.
//
// # Distributed tracing
//
// TraceContext carries a W3C traceparent-compatible identity (128-bit
// trace id, 64-bit span id, sampled flag) across process hops via
// InjectTrace / TraceFromHeader; IDSource mints ids deterministically
// from a seed (tests) or the crypto-seeded process default (NewTrace,
// ChildOf).  SpanRecorder.Trace binds a local solve tree under a remote
// parent span, so the schedlb root, the shard's wire spans, and the
// prepare/search/build tree form one tree keyed by the shared trace id.
// FlightRecorder keeps a bounded ring of completed request traces (last
// N plus everything over a slow threshold) and serves them at
// GET /v1/debug/traces for after-the-fact latency attribution.
//
// # Diagnostics
//
// LogSlowSolve emits one structured log/slog line for a solve that
// exceeded a latency threshold, with the phase breakdown attributed from
// a recorded span tree; serve wires it behind Config.SlowSolveThreshold.
package obs

import "sync"

// defaultRegistry is the process-global registry returned by Default.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the process-global Registry.  Long-running binaries
// that embed several subsystems can share it; the serve.Server keeps its
// own per-server Registry instead so two servers in one process never
// collide.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}
