package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sched_requests_total", "Requests.").Add(5)
	r.Counter(`sched_cache_hits_total{cache="results"}`, "Cache hits.").Add(2)
	r.Counter(`sched_cache_hits_total{cache="solvers"}`, "Cache hits.").Add(3)
	r.Gauge("sched_sessions_active", "Active sessions.").Set(4)
	r.GaugeFunc("sched_cache_size", "Entries.", func() float64 { return 17 })
	h := r.Histogram("sched_solve_duration_seconds", "Latency.", DefaultLatencyBuckets()...)
	h.Observe(0.002)
	h.Observe(0.004)
	h.Observe(42) // overflow bucket
	return r
}

func TestWritePrometheusParsesAndMatches(t *testing.T) {
	r := buildTestRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for name, want := range map[string]float64{
		"sched_requests_total":                    5,
		`sched_cache_hits_total{cache="results"}`: 2,
		`sched_cache_hits_total{cache="solvers"}`: 3,
		"sched_sessions_active":                   4,
		"sched_cache_size":                        17,
		"sched_solve_duration_seconds_count":      3,
	} {
		if got := samples[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if got := samples[`sched_solve_duration_seconds_bucket{le="+Inf"}`]; got != 3 {
		t.Errorf("+Inf bucket = %g, want 3", got)
	}
	if got := samples[`sched_solve_duration_seconds_bucket{le="0.005"}`]; got != 2 {
		t.Errorf("le=0.005 bucket = %g, want 2", got)
	}
}

func TestWritePrometheusRuntimeBlock(t *testing.T) {
	r := buildTestRegistry()
	r.EnableRuntimeMetrics()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition with runtime block does not parse: %v", err)
	}
	if samples["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %g, want >= 1", samples["go_goroutines"])
	}
	if samples["go_memstats_heap_alloc_bytes"] <= 0 {
		t.Errorf("heap alloc = %g, want > 0", samples["go_memstats_heap_alloc_bytes"])
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("served exposition invalid: %v", err)
	}
}

func TestHandlerRejectsPost(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"no type line":      "orphan_total 3\n",
		"bad value":         "# TYPE x_total counter\nx_total banana\n",
		"duplicate series":  "# TYPE x_total counter\nx_total 1\nx_total 2\n",
		"unbalanced labels": "# TYPE x_total counter\nx_total}{ 1\n",
		"histogram no inf":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram no sum":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
	} {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: accepted malformed exposition", name)
		}
	}
}

func TestParseExpositionAcceptsWellFormed(t *testing.T) {
	data := "# HELP x_total Things.\n# TYPE x_total counter\nx_total 3\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.5"} 1` + "\n" +
		`h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 1.25\nh_count 2\n"
	samples, err := ParseExposition([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if samples["x_total"] != 3 || samples["h_count"] != 2 {
		t.Fatalf("unexpected samples: %v", samples)
	}
}
