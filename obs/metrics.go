package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.  The zero value
// is ready for use; all methods are lock-free and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.  The zero value is ready for
// use; all methods are lock-free and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic recording and
// quantile extraction.  Observe is lock-free and allocation-free, so it
// is safe on solve hot paths; the read side (Quantile, Snapshot) takes a
// best-effort atomic snapshot that may be torn across concurrent
// observations by at most the in-flight updates — fine for monitoring,
// which is the only consumer.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS-maximized
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds.  An implicit +Inf overflow bucket is always appended.  It
// panics on an empty, non-finite or non-ascending bound list — histogram
// shapes are static configuration, not runtime input.  Non-finite bounds
// are rejected explicitly: an explicit +Inf bound would duplicate the
// implicit overflow bucket's le="+Inf" exposition series, and a NaN
// bound would slip through a pure ascending check (every NaN comparison
// is false) and then swallow all observations routed to it.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %d is %g; bounds must be finite (the +Inf overflow bucket is implicit)", i, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %g <= %g", i, b, bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DefaultLatencyBuckets returns the bucket bounds used for solve and
// request latencies, in seconds: 100µs up to 10s, roughly 1-2.5-5 per
// decade.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Observe records one value.  It performs no allocations and takes no
// locks.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank; observations
// in the +Inf overflow bucket are attributed to the observed maximum.
// Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q > 1 || math.IsNaN(q) {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= target {
			if i == len(h.bounds) { // overflow bucket
				return h.Max()
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (target - cum) / n
			est := lower + (upper-lower)*frac
			// Clamp to the tracked maximum unconditionally: with total>0
			// a max of 0 means every sample was <= 0, and the bucket
			// interpolation would overshoot the true quantile.
			if m := h.Max(); est > m {
				return m
			}
			return est
		}
		cum += n
	}
	return h.Max()
}

// BucketSnapshot is one exposed bucket: the upper bound and the
// cumulative count of observations at or below it.
type BucketSnapshot struct {
	UpperBound float64 // +Inf for the overflow bucket
	Cumulative uint64
}

// Snapshot returns the cumulative bucket counts, total count and sum, as
// the Prometheus exposition needs them.
func (h *Histogram) Snapshot() (buckets []BucketSnapshot, count uint64, sum float64) {
	buckets = make([]BucketSnapshot, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		buckets[i] = BucketSnapshot{UpperBound: ub, Cumulative: cum}
	}
	return buckets, h.count.Load(), h.Sum()
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series: a full series name (which may carry a
// fixed label set, e.g. `sched_cache_hits_total{cache="results"}`), the
// label-free family name it belongs to, and the backing value.
type metric struct {
	name   string // full series name including any {labels}
	family string // name up to the label block
	labels string // inside of the {...} block, "" when unlabeled
	help   string
	kind   metricKind

	c *Counter
	g *Gauge
	f func() float64
	h *Histogram
}

// Registry names metrics and renders them in Prometheus text exposition
// format.  Registration takes a lock; recording into the returned
// metrics is lock-free.  Registering the same series name twice returns
// the original metric (get-or-create), so independent subsystems can
// share one series; a name reuse across different metric kinds panics.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
	runtime bool
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter, func() *metric {
		return &metric{c: &Counter{}}
	})
	return m.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge, func() *metric {
		return &metric{g: &Gauge{}}
	})
	return m.g
}

// GaugeFunc registers a gauge series whose value is read from f at
// exposition time — for cheap derived values such as cache sizes.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, kindGaugeFunc, func() *metric {
		return &metric{f: f}
	})
}

// Histogram registers (or returns the existing) histogram series over
// the given bucket bounds (see NewHistogram).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	m := r.register(name, help, kindHistogram, func() *metric {
		return &metric{h: NewHistogram(bounds...)}
	})
	return m.h
}

// EnableRuntimeMetrics appends Go runtime series (goroutines, heap, GC
// pauses) to every exposition of this registry.
func (r *Registry) EnableRuntimeMetrics() {
	r.mu.Lock()
	r.runtime = true
	r.mu.Unlock()
}

func (r *Registry) register(name, help string, kind metricKind, build func() *metric) *metric {
	family, labels, err := splitSeriesName(name)
	if err != nil {
		panic("obs: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: series %s re-registered as a different metric kind", name))
		}
		return m
	}
	// All series of one family must share kind and help: the exposition
	// emits one # TYPE line per family.
	for _, m := range r.metrics {
		if m.family == family && m.kind != kind {
			panic(fmt.Sprintf("obs: family %s mixes metric kinds", family))
		}
	}
	m := build()
	m.name, m.family, m.labels, m.help, m.kind = name, family, labels, help, kind
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// splitSeriesName splits `family{labels}` and validates the family name
// against the Prometheus metric-name charset.
func splitSeriesName(name string) (family, labels string, err error) {
	family = name
	if i := indexByte(name, '{'); i >= 0 {
		if len(name) < i+2 || name[len(name)-1] != '}' {
			return "", "", fmt.Errorf("malformed series name %q", name)
		}
		family, labels = name[:i], name[i+1:len(name)-1]
		if labels == "" {
			return "", "", fmt.Errorf("empty label block in series name %q", name)
		}
	}
	if family == "" {
		return "", "", fmt.Errorf("empty metric name in %q", name)
	}
	for i := 0; i < len(family); i++ {
		c := family[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return "", "", fmt.Errorf("invalid metric name %q", family)
		}
	}
	return family, labels, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// families groups the registered metrics by family, preserving first-
// registration order, so the exposition emits one HELP/TYPE header per
// family with all its series consecutive.
func (r *Registry) families() [][]*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	order := map[string]int{}
	var out [][]*metric
	for _, m := range r.metrics {
		if i, ok := order[m.family]; ok {
			out[i] = append(out[i], m)
			continue
		}
		order[m.family] = len(out)
		out = append(out, []*metric{m})
	}
	return out
}

// P50P90P99 is a helper for summaries printed by CLIs: it returns the
// histogram's p50, p90 and p99 in one call.
func (h *Histogram) P50P90P99() (p50, p90, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
}
