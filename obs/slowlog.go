package obs

import (
	"log/slog"
	"time"
)

// LogSlowSolve emits one structured warning line for a solve that
// exceeded its latency threshold, with the phase breakdown attributed
// from the recorded span tree (zeros when root is nil — e.g. the solve
// never reached the instrumented path).
//
// The line's shape, stable for log scrapers:
//
//	level=WARN msg="slow solve" trace_id=<hex|""> fingerprint=<hex>
//	  variant=<s|p|n> algorithm=<name> elapsed_ms=<float> probes=<int>
//	  prepare_ms=<float> search_ms=<float> build_ms=<float>
//
// trace_id is the distributed trace id when the solve was traced (the
// join key into /v1/debug/traces on every tier), empty otherwise.
func LogSlowSolve(lg *slog.Logger, elapsed time.Duration, traceID, fingerprint, variant, algorithm string, probes int, root *Span) {
	if lg == nil {
		lg = slog.Default()
	}
	phases := PhaseDurations(root)
	lg.Warn("slow solve",
		"trace_id", traceID,
		"fingerprint", fingerprint,
		"variant", variant,
		"algorithm", algorithm,
		"elapsed_ms", float64(elapsed.Microseconds())/1e3,
		"probes", probes,
		"prepare_ms", float64(phases["prepare"].Microseconds())/1e3,
		"search_ms", float64(phases["search"].Microseconds())/1e3,
		"build_ms", float64(phases["build"].Microseconds())/1e3,
	)
}
