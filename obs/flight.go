package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RecordedTrace is one completed request trace held by a
// FlightRecorder: the wire identity, where it ran, how it was routed,
// and the full span tree.  It is the JSON element of
// GET /v1/debug/traces and the join record of `schedload -trace-report`
// (lb-side and shard-side entries share the trace id).
type RecordedTrace struct {
	TraceID string `json:"trace_id"`
	// Service names the recording process: "schedlb" on the front tier,
	// the shard id (or "schedserve") on a shard.
	Service string `json:"service,omitempty"`
	// Route is the request class: solve | batch | batch-item | session.
	Route string `json:"route,omitempty"`
	// Shard is the routing decision: on the lb the ring-predicted owner,
	// on a shard its own id — equality is the trace-level misroute proof.
	Shard string `json:"shard,omitempty"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status,omitempty"`
	// Slow marks traces retained because they exceeded the recorder's
	// slow threshold (kept beyond the last-N window).
	Slow bool `json:"slow,omitempty"`
	// DurUS is the root span's duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// UnixUS is the completion wall-clock time in microseconds since the
	// Unix epoch, so rings from different processes can be ordered.
	UnixUS int64 `json:"unix_us"`
	Root   *Span `json:"root,omitempty"`
}

// traceRing is a fixed-capacity overwrite-oldest buffer.
type traceRing struct {
	buf  []RecordedTrace
	head int // next write position
	n    int // live entries
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]RecordedTrace, capacity)}
}

// push appends, reporting whether an older entry was overwritten.
func (r *traceRing) push(t RecordedTrace) (dropped bool) {
	dropped = r.n == len(r.buf)
	r.buf[r.head] = t
	r.head = (r.head + 1) % len(r.buf)
	if !dropped {
		r.n++
	}
	return dropped
}

// each visits the live entries oldest-first.
func (r *traceRing) each(f func(*RecordedTrace)) {
	start := r.head - r.n
	for i := 0; i < r.n; i++ {
		f(&r.buf[(start+i+len(r.buf))%len(r.buf)])
	}
}

// FlightRecorder is an always-on bounded buffer of completed request
// traces: it keeps the last N traces plus, in a separate (also bounded)
// ring, every trace slower than the slow threshold, so a latency spike
// is still inspectable after the steady-state window has rotated past
// it.  Record is O(1) under one short mutex hold and allocates nothing
// beyond the trace the caller already built, so it is safe on the
// request path; memory is bounded by the two preallocated rings.
//
// Both schedserve and schedlb expose their recorder at
// GET /v1/debug/traces (see Handler).
type FlightRecorder struct {
	mu     sync.Mutex
	recent *traceRing
	slow   *traceRing
	slowNS int64

	// recorded counts every Record call; dropped counts ring entries
	// overwritten before anyone read them.  Optional (may be nil) —
	// servers inject registry-backed counters here.
	recorded *Counter
	dropped  *Counter
}

// DefaultFlightCapacity is the recent-ring capacity servers default to.
const DefaultFlightCapacity = 256

// NewFlightRecorder builds a recorder keeping the last `recent`
// completed traces plus up to `slowCap` traces over slowThreshold
// (slowCap 0 means 2*recent; slowThreshold 0 disables the slow ring).
func NewFlightRecorder(recent, slowCap int, slowThreshold time.Duration) *FlightRecorder {
	if recent <= 0 {
		recent = DefaultFlightCapacity
	}
	if slowCap <= 0 {
		slowCap = 2 * recent
	}
	f := &FlightRecorder{
		recent: newTraceRing(recent),
		slowNS: slowThreshold.Nanoseconds(),
	}
	if slowThreshold > 0 {
		f.slow = newTraceRing(slowCap)
	}
	return f
}

// SetCounters wires the recorded/dropped counters (typically registry
// series) into the recorder.  Call before the first Record.
func (f *FlightRecorder) SetCounters(recorded, dropped *Counter) {
	f.recorded, f.dropped = recorded, dropped
}

// Record books one completed trace.  Traces at or above the slow
// threshold go to the slow ring (and are marked Slow); everything is
// kept in the recent ring.
func (f *FlightRecorder) Record(t RecordedTrace) {
	if t.UnixUS == 0 {
		t.UnixUS = time.Now().UnixMicro()
	}
	slow := f.slow != nil && t.DurUS*1000 >= f.slowNS
	t.Slow = slow
	drops := 0
	f.mu.Lock()
	if f.recent.push(t) {
		drops++
	}
	if slow && f.slow.push(t) {
		drops++
	}
	f.mu.Unlock()
	if f.recorded != nil {
		f.recorded.Inc()
	}
	if f.dropped != nil && drops > 0 {
		f.dropped.Add(uint64(drops))
	}
}

// Snapshot returns the retained traces, oldest first, filtered by exact
// trace id (empty matches all) and minimum duration; limit bounds the
// result (0 means no bound).  Slow-ring entries whose trace id also
// sits in the recent ring are deduplicated.
func (f *FlightRecorder) Snapshot(traceID string, minDur time.Duration, limit int) []RecordedTrace {
	minUS := minDur.Microseconds()
	var out []RecordedTrace
	seen := map[string]bool{}
	collect := func(t *RecordedTrace) {
		if traceID != "" && t.TraceID != traceID {
			return
		}
		if t.DurUS < minUS {
			return
		}
		key := t.TraceID + "/" + strconv.FormatInt(t.UnixUS, 10)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, *t)
	}
	f.mu.Lock()
	if f.slow != nil {
		f.slow.each(collect)
	}
	f.recent.each(collect)
	f.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Len returns the live entry counts of the recent and slow rings.
func (f *FlightRecorder) Len() (recent, slow int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	recent = f.recent.n
	if f.slow != nil {
		slow = f.slow.n
	}
	return recent, slow
}

// TracesResponse is the JSON body of GET /v1/debug/traces.
type TracesResponse struct {
	Count  int             `json:"count"`
	Traces []RecordedTrace `json:"traces"`
}

// Handler serves the recorder at GET /v1/debug/traces.  Query
// parameters: trace_id (exact match), min_ms (minimum duration in
// milliseconds, float), limit (max traces returned, default 100).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		var minDur time.Duration
		if raw := q.Get("min_ms"); raw != "" {
			ms, err := strconv.ParseFloat(raw, 64)
			if err != nil || ms < 0 {
				http.Error(w, "bad min_ms", http.StatusBadRequest)
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		limit := 100
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		traces := f.Snapshot(q.Get("trace_id"), minDur, limit)
		if traces == nil {
			traces = []RecordedTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&TracesResponse{Count: len(traces), Traces: traces})
	})
}
