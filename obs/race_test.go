package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentRecordingAndScrape hammers counters and a histogram from
// many goroutines while the registry is scraped concurrently, asserting
// (under -race) that recording is data-race free, that scraped counter
// values only ever increase, and that every scrape is well-formed
// exposition.
func TestConcurrentRecordingAndScrape(t *testing.T) {
	r := NewRegistry()
	r.EnableRuntimeMetrics()
	c := r.Counter("hammer_total", "Hammered counter.")
	g := r.Gauge("hammer_gauge", "Hammered gauge.")
	h := r.Histogram("hammer_seconds", "Hammered histogram.", DefaultLatencyBuckets()...)

	const (
		writers = 8
		perG    = 5000
		scrapes = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1e4)
			}
		}(w)
	}

	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		lastCounter, lastHist := 0.0, 0.0
		for i := 0; i < scrapes; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			samples, err := ParseExposition(buf.Bytes())
			if err != nil {
				t.Errorf("scrape %d: malformed exposition: %v\n%s", i, err, buf.String())
				return
			}
			if v := samples["hammer_total"]; v < lastCounter {
				t.Errorf("scrape %d: counter went backwards: %g < %g", i, v, lastCounter)
				return
			} else {
				lastCounter = v
			}
			if v := samples["hammer_seconds_count"]; v < lastHist {
				t.Errorf("scrape %d: histogram count went backwards: %g < %g", i, v, lastHist)
				return
			} else {
				lastHist = v
			}
		}
	}()

	wg.Wait()
	scrapeWG.Wait()

	if got := c.Load(); got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
	if got := g.Load(); got != writers*perG {
		t.Fatalf("gauge = %d, want %d", got, writers*perG)
	}
	// The histogram sum is CAS-accumulated: after quiescence it must
	// equal the serial sum exactly (each value added exactly once).
	want := 0.0
	for w := 0; w < writers; w++ {
		for i := 0; i < perG; i++ {
			want += float64(i%100) / 1e4
		}
	}
	if diff := h.Sum() - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

// TestConcurrentRegistration exercises get-or-create registration from
// many goroutines: all must get the same counter.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 16)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("shared_total", "Shared.")
			counters[i].Inc()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(counters); i++ {
		if counters[i] != counters[0] {
			t.Fatal("concurrent registration returned distinct counters")
		}
	}
	if got := counters[0].Load(); got != 16 {
		t.Fatalf("shared counter = %d, want 16", got)
	}
}
