package obs

import (
	"math"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // values 0.5 .. 7.5
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 0.0
	for i := 0; i < 100; i++ {
		wantSum += float64(i%8) + 0.5
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	if h.Max() != 7.5 {
		t.Fatalf("max = %g, want 7.5", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 8 {
		t.Fatalf("p50 = %g out of plausible range", p50)
	}
	// Quantile must be monotone in q and capped by the observed max.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		if v > h.Max() {
			t.Fatalf("quantile %g at q=%g exceeds max %g", v, q, h.Max())
		}
		prev = v
	}
}

func TestHistogramOverflowBucketUsesMax(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(50)
	h.Observe(100)
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("overflow quantile = %g, want observed max 100", got)
	}
}

// TestHistogramAllSamplesAboveFiniteBuckets pins the overflow-bucket
// clamp: when every sample lands past the last finite bound, every
// quantile — not just the tail — reports the tracked maximum instead of
// interpolating into an unbounded bucket.
func TestHistogramAllSamplesAboveFiniteBuckets(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{3, 7, 12, 25} {
		h.Observe(v)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 25 {
			t.Fatalf("Quantile(%g) = %g, want tracked max 25", q, got)
		}
	}
}

// TestHistogramAllZeroSamples pins the unconditional max clamp: a stream
// of zero-valued observations must not report a quantile interpolated
// above the largest sample.
func TestHistogramAllZeroSamples(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets()...)
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero quantile = %g, want 0", got)
	}
}

func TestHistogramRejectsNonFiniteBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		{1, 2, math.Inf(1)}, // would duplicate the implicit le="+Inf" series
		{math.Inf(-1), 1},
		{1, math.NaN(), 3}, // NaN defeats a pure ascending check
		{},
		{1, 1},
		{2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets()...)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets()...)
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.003) > 1e-12 {
		t.Fatalf("sum = %g, want 0.003", h.Sum())
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets()...)
	var c Counter
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0042)
		c.Inc()
	})
	if allocs != 0 {
		t.Fatalf("Observe+Inc allocates %.1f per op, want 0", allocs)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same series name returned distinct counters")
	}
	h1 := r.Histogram("lat_seconds", "lat", 1, 2)
	h2 := r.Histogram("lat_seconds", "lat", 1, 2)
	if h1 != h2 {
		t.Fatal("same series name returned distinct histograms")
	}
}

func TestRegistryLabeledSeriesShareFamily(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter(`cache_hits_total{cache="results"}`, "Cache hits.")
	hits2 := r.Counter(`cache_hits_total{cache="solvers"}`, "Cache hits.")
	if hits == hits2 {
		t.Fatal("distinct label sets must get distinct counters")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m_total", "m")
}

func TestSplitSeriesName(t *testing.T) {
	for _, tc := range []struct {
		in, family, labels string
		ok                 bool
	}{
		{"a_total", "a_total", "", true},
		{`a_total{x="1"}`, "a_total", `x="1"`, true},
		{`a_total{}`, "", "", false},
		{"", "", "", false},
		{"9bad", "", "", false},
		{"bad name", "", "", false},
	} {
		fam, lab, err := splitSeriesName(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("%q: err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && (fam != tc.family || lab != tc.labels) {
			t.Fatalf("%q: got (%q,%q), want (%q,%q)", tc.in, fam, lab, tc.family, tc.labels)
		}
	}
}
