package obs

import (
	"strings"
	"testing"
)

// Edge cases of the exposition parser beyond the happy path: escaped
// label values, +Inf bucket ordering, and duplicate series rejection.

func TestParseExpositionEscapedLabelValues(t *testing.T) {
	// A quoted label value may contain escaped quotes and commas; the
	// comma inside quotes must not split the label block.
	text := strings.Join([]string{
		`# TYPE sched_test_total counter`,
		`sched_test_total{path="a\"b",kind="x,y"} 3`,
		`sched_test_total{path="plain"} 4`,
		``,
	}, "\n")
	got, err := ParseExposition([]byte(text))
	if err != nil {
		t.Fatalf("escaped labels rejected: %v", err)
	}
	if got[`sched_test_total{path="a\"b",kind="x,y"}`] != 3 {
		t.Fatalf("escaped series missing: %v", got)
	}
	if got[`sched_test_total{path="plain"}`] != 4 {
		t.Fatalf("plain series missing: %v", got)
	}
}

func TestParseExpositionInfBucketOrdering(t *testing.T) {
	// +Inf listed first: ordering in the text must not matter, the
	// cumulative check sorts by le.
	ok := strings.Join([]string{
		`# TYPE sched_lat_seconds histogram`,
		`sched_lat_seconds_bucket{le="+Inf"} 5`,
		`sched_lat_seconds_bucket{le="0.1"} 2`,
		`sched_lat_seconds_bucket{le="1"} 5`,
		`sched_lat_seconds_sum 1.25`,
		`sched_lat_seconds_count 5`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(ok)); err != nil {
		t.Fatalf("reordered buckets rejected: %v", err)
	}

	// Missing +Inf bucket is an error.
	noInf := strings.Join([]string{
		`# TYPE sched_lat_seconds histogram`,
		`sched_lat_seconds_bucket{le="0.1"} 2`,
		`sched_lat_seconds_sum 1.25`,
		`sched_lat_seconds_count 5`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(noInf)); err == nil {
		t.Fatal("histogram without +Inf bucket accepted")
	}

	// Non-cumulative buckets are an error.
	decreasing := strings.Join([]string{
		`# TYPE sched_lat_seconds histogram`,
		`sched_lat_seconds_bucket{le="0.1"} 6`,
		`sched_lat_seconds_bucket{le="1"} 2`,
		`sched_lat_seconds_bucket{le="+Inf"} 6`,
		`sched_lat_seconds_sum 1`,
		`sched_lat_seconds_count 6`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(decreasing)); err == nil {
		t.Fatal("non-cumulative histogram accepted")
	}

	// +Inf bucket disagreeing with _count is an error.
	mismatch := strings.Join([]string{
		`# TYPE sched_lat_seconds histogram`,
		`sched_lat_seconds_bucket{le="+Inf"} 4`,
		`sched_lat_seconds_sum 1`,
		`sched_lat_seconds_count 5`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(mismatch)); err == nil {
		t.Fatal("+Inf != _count accepted")
	}
}

func TestParseExpositionDuplicateSeries(t *testing.T) {
	dupPlain := strings.Join([]string{
		`# TYPE sched_x_total counter`,
		`sched_x_total 1`,
		`sched_x_total 2`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(dupPlain)); err == nil {
		t.Fatal("duplicate unlabeled series accepted")
	}

	dupLabeled := strings.Join([]string{
		`# TYPE sched_x_total counter`,
		`sched_x_total{kind="a"} 1`,
		`sched_x_total{kind="a"} 2`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(dupLabeled)); err == nil {
		t.Fatal("duplicate labeled series accepted")
	}

	// Distinct label sets of one family are not duplicates.
	distinct := strings.Join([]string{
		`# TYPE sched_x_total counter`,
		`sched_x_total{kind="a"} 1`,
		`sched_x_total{kind="b"} 2`,
		``,
	}, "\n")
	if _, err := ParseExposition([]byte(distinct)); err != nil {
		t.Fatalf("distinct label sets rejected: %v", err)
	}
}

func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "s7")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `sched_build_info{goversion="`) ||
		!strings.Contains(text, `shard="s7"`) {
		t.Fatalf("build info series missing:\n%s", text)
	}
	if _, err := ParseExposition([]byte(text)); err != nil {
		t.Fatalf("build info exposition invalid: %v", err)
	}
	// Without a shard id the label is omitted entirely.
	reg2 := NewRegistry()
	RegisterBuildInfo(reg2, "")
	sb.Reset()
	_ = reg2.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "shard=") {
		t.Fatalf("empty shard id produced a shard label:\n%s", sb.String())
	}
}
