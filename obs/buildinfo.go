package obs

import (
	"runtime"
	"strconv"
)

// RegisterBuildInfo mounts the constant sched_build_info gauge on reg:
// value 1, with the Go toolchain version, GOMAXPROCS, and (when
// non-empty) the shard id as labels.  Fleet scrapes join it against the
// per-process series to tell shards, proxies, and toolchain rollouts
// apart without relabeling.  Both schedserve and schedlb expose it.
func RegisterBuildInfo(reg *Registry, shard string) {
	labels := `goversion="` + runtime.Version() +
		`",gomaxprocs="` + strconv.Itoa(runtime.GOMAXPROCS(0)) + `"`
	if shard != "" {
		labels += `,shard="` + shard + `"`
	}
	reg.GaugeFunc("sched_build_info{"+labels+"}",
		"Build and runtime identity of this process (constant 1).",
		func() float64 { return 1 })
}
