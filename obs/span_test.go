package obs

import (
	"encoding/json"
	"testing"
	"time"

	"setupsched/sched"
)

func TestSpanRecorderSerialSolve(t *testing.T) {
	r := NewSpanRecorder()
	done := r.StartPhase("prepare")
	done()
	for i, tc := range []struct {
		T        sched.Rat
		accepted bool
	}{
		{sched.R(8), true},
		{sched.R(4), false},
		{sched.RatOf(13, 2), true},
	} {
		r.ProbeStarted(tc.T)
		r.ProbeFinished(tc.T, tc.accepted)
		_ = i
	}
	r.SearchFinished("split-jump", 3)
	root := r.Root()

	if root.Name != "solve" || root.Algorithm != "split-jump" {
		t.Fatalf("root = %+v", root)
	}
	if root.Child("prepare") == nil {
		t.Fatal("missing prepare span")
	}
	search := root.Child("search")
	if search == nil {
		t.Fatal("missing search span")
	}
	if search.Probes != 3 || len(search.Children) != 3 {
		t.Fatalf("search: probes=%d children=%d", search.Probes, len(search.Children))
	}
	if search.Children[0].Outcome != "accept" || search.Children[1].Outcome != "reject" {
		t.Fatalf("probe outcomes: %q %q", search.Children[0].Outcome, search.Children[1].Outcome)
	}
	if search.Children[2].T != "13/2" {
		t.Fatalf("probe T = %q, want 13/2", search.Children[2].T)
	}
	if root.Child("build") == nil {
		t.Fatal("missing build span")
	}
	phases := PhaseDurations(root)
	for _, name := range []string{"prepare", "search", "build"} {
		if _, ok := phases[name]; !ok {
			t.Errorf("PhaseDurations lacks %s", name)
		}
	}
}

func TestSpanRecorderSpeculativeBatch(t *testing.T) {
	// Speculative probing reports k starts then k finishes in the same
	// ascending-T order; matching must pair them correctly.
	r := NewSpanRecorder()
	guesses := []sched.Rat{sched.R(2), sched.R(4), sched.R(8)}
	for _, g := range guesses {
		r.ProbeStarted(g)
	}
	for i, g := range guesses {
		r.ProbeFinished(g, i == 2)
	}
	r.SearchFinished("split-jump", 3)
	root := r.Root()
	search := root.Child("search")
	if len(search.Children) != 3 {
		t.Fatalf("children = %d", len(search.Children))
	}
	for i, want := range []string{"2", "4", "8"} {
		if search.Children[i].T != want {
			t.Fatalf("probe %d: T = %q, want %q", i, search.Children[i].T, want)
		}
	}
	if search.Children[2].Outcome != "accept" {
		t.Fatalf("probe 2 outcome = %q", search.Children[2].Outcome)
	}
}

func TestSpanRecorderDuplicateGuess(t *testing.T) {
	// Under speculation the same T can be probed twice; FIFO matching by
	// guess must close the earliest open span first.
	r := NewSpanRecorder()
	T := sched.R(5)
	r.ProbeStarted(T)
	r.ProbeStarted(T)
	r.ProbeFinished(T, false)
	r.ProbeFinished(T, false)
	r.SearchFinished("nonp-search", 2)
	root := r.Root()
	search := root.Child("search")
	if len(search.Children) != 2 {
		t.Fatalf("children = %d", len(search.Children))
	}
	for i, sp := range search.Children {
		if sp.Outcome == "" {
			t.Fatalf("probe %d left open", i)
		}
	}
}

func TestSpanRecorderAbandonedSolve(t *testing.T) {
	// A canceled solve never reports SearchFinished; Root must still
	// close everything.
	r := NewSpanRecorder()
	r.ProbeStarted(sched.R(3))
	root := r.Root()
	if root.DurUS < 0 {
		t.Fatal("root not closed")
	}
	search := root.Child("search")
	if search == nil || len(search.Children) != 1 {
		t.Fatal("missing probe under search")
	}
}

func TestSpanJSONShape(t *testing.T) {
	r := NewSpanRecorder()
	r.ProbeStarted(sched.R(2))
	r.ProbeFinished(sched.R(2), true)
	r.SearchFinished("split-2approx", 1)
	data, err := json.Marshal(r.Root())
	if err != nil {
		t.Fatal(err)
	}
	var round Span
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Name != "solve" || round.Algorithm != "split-2approx" {
		t.Fatalf("round trip: %+v", round)
	}
	if round.Child("search") == nil || round.Child("search").Children[0].Outcome != "accept" {
		t.Fatalf("round trip lost probe detail: %s", data)
	}
}

func TestProbeCounterCounts(t *testing.T) {
	var probes, searches Counter
	pc := &ProbeCounter{C: &probes, Searches: &searches}
	pc.ProbeStarted(sched.R(1))
	pc.ProbeFinished(sched.R(1), true)
	pc.ProbeFinished(sched.R(2), false)
	pc.SearchFinished("x", 2)
	if probes.Load() != 2 || searches.Load() != 1 {
		t.Fatalf("probes=%d searches=%d", probes.Load(), searches.Load())
	}
}

func TestLogSlowSolveDoesNotPanic(t *testing.T) {
	r := NewSpanRecorder()
	r.ProbeStarted(sched.R(2))
	r.ProbeFinished(sched.R(2), true)
	r.SearchFinished("split-jump", 1)
	LogSlowSolve(nil, 50*time.Millisecond, "0af7651916cd43dd8448eb211c80319c", "deadbeef", "s", "split-jump", 1, r.Root())
	LogSlowSolve(nil, 50*time.Millisecond, "", "deadbeef", "s", "split-jump", 1, nil)
}
