package obs

import (
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"

	"setupsched/sched"
)

// Span is one node of a solve trace.  Timestamps are microseconds since
// the recorder's start (monotonic clock), so a span tree is self-
// contained and serializes to compact JSON.
//
// Span names map onto the phases of the Deppert–Jansen near-linear
// algorithms: "solve" is the root, "prepare" the O(n) preprocessing pass
// (class work sums, maxima, trivial bounds), "search" the dual-
// approximation threshold search with one "probe" child per dual-test
// evaluation, and "build" the schedule construction after the final
// accepted guess.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// T is the makespan guess of a "probe" span.
	T string `json:"t,omitempty"`
	// Outcome is "accept" or "reject" on a "probe" span.
	Outcome string `json:"outcome,omitempty"`
	// Algorithm names the search on the root span (e.g. "split-jump").
	Algorithm string `json:"algorithm,omitempty"`
	// Probes is the total dual-test count, set on the "search" span.
	Probes int `json:"probes,omitempty"`
	// TraceID binds the root span into a distributed trace (hex, 32
	// digits); children inherit it implicitly and carry only span ids.
	TraceID string `json:"trace_id,omitempty"`
	// SpanID is the span's identity within the trace (hex, 16 digits).
	SpanID string `json:"span_id,omitempty"`
	// Parent is the parent span's id — for a traced root, the remote
	// (wire) span of the caller on the other side of the hop.
	Parent string `json:"parent_span_id,omitempty"`
	// Shard names the process that recorded the span (set on wire-level
	// spans by the serving tier).
	Shard    string  `json:"shard,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Duration returns the span's duration.
func (s *Span) Duration() time.Duration { return time.Duration(s.DurUS) * time.Microsecond }

// Child returns the first direct child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// PhaseDurations extracts the prepare/search/build phase durations from
// a recorded root span — the breakdown the slow-solve log and schedbench
// phase columns report.
func PhaseDurations(root *Span) map[string]time.Duration {
	out := map[string]time.Duration{}
	if root == nil {
		return out
	}
	for _, c := range root.Children {
		out[c.Name] += c.Duration()
	}
	return out
}

// SpanRecorder assembles the span tree of ONE solve.  It implements the
// solver's probe-level Observer seam: attach it with
// setupsched.WithObserver (or stream.WithObserver) and read the finished
// tree with Root after the solve returns.  Phases outside the solver's
// event stream — the O(n) preparation in NewSolver — are bracketed
// explicitly with StartPhase.
//
// A recorder is single-use: one solve, then Root.  It is internally
// locked, so the solver's sequential event contract plus any concurrent
// StartPhase caller is safe, but events from two interleaved solves
// would produce a nonsense tree.
type SpanRecorder struct {
	mu   sync.Mutex
	t0   time.Time
	root *Span
	// search is created lazily at the first probe.
	search *Span
	// open holds started-but-unfinished probe spans in start order; the
	// solver reports speculative batches as k starts then k finishes in
	// the same ascending-T order, so FIFO matching is exact (a guess-
	// comparison scan backs it up).
	open         []*Span
	lastProbeEnd int64 // µs; end of the most recent probe
	closed       bool
	// traced is set by Trace; child span ids are then derived
	// deterministically from the root span id via the SplitMix64 stream
	// (unique within the trace, no RNG on the probe path).
	traced bool
	idSeed uint64
	idSeq  uint64
}

// NewSpanRecorder starts a recorder; the root "solve" span opens now.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{t0: time.Now(), root: &Span{Name: "solve"}}
}

func (r *SpanRecorder) now() int64 { return time.Since(r.t0).Microseconds() }

// Trace binds the recorder's tree into a distributed trace: the root
// "solve" span takes the context's trace and span ids with remoteParent
// (the caller's wire span, zero for a local root) as its parent, and
// every child span opened afterwards gets a unique span id derived
// deterministically from the root span id.  Call it right after
// NewSpanRecorder; spans opened before the call are stamped
// retroactively.
func (r *SpanRecorder) Trace(tc TraceContext, remoteParent SpanID) {
	if !tc.Valid() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traced = true
	r.idSeed = binary.BigEndian.Uint64(tc.SpanID[:])
	r.root.TraceID = tc.TraceID.String()
	r.root.SpanID = tc.SpanID.String()
	if !remoteParent.IsZero() {
		r.root.Parent = remoteParent.String()
	}
	var stamp func(parent *Span)
	stamp = func(parent *Span) {
		for _, c := range parent.Children {
			if c.SpanID == "" {
				c.SpanID = r.childID()
				c.Parent = parent.SpanID
			}
			stamp(c)
		}
	}
	stamp(r.root)
}

// childID mints the next child span id.  Caller holds r.mu.
func (r *SpanRecorder) childID() string {
	for {
		r.idSeq++
		v := splitmix64(r.idSeed + r.idSeq)
		if v == 0 {
			continue
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		return hex.EncodeToString(b[:])
	}
}

// bind stamps a freshly opened child span when traced.  Caller holds
// r.mu.
func (r *SpanRecorder) bind(sp, parent *Span) {
	if r.traced {
		sp.SpanID = r.childID()
		sp.Parent = parent.SpanID
	}
}

// StartPhase opens a named child span of the root (e.g. "prepare") and
// returns the function that closes it.
func (r *SpanRecorder) StartPhase(name string) func() {
	r.mu.Lock()
	sp := &Span{Name: name, StartUS: r.now()}
	r.bind(sp, r.root)
	r.root.Children = append(r.root.Children, sp)
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		sp.DurUS = r.now() - sp.StartUS
		r.mu.Unlock()
	}
}

// ProbeStarted implements the Observer seam: it opens the "search" span
// on the first probe and a "probe" child per guess.
func (r *SpanRecorder) ProbeStarted(T sched.Rat) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if r.search == nil {
		r.search = &Span{Name: "search", StartUS: now}
		r.bind(r.search, r.root)
		r.root.Children = append(r.root.Children, r.search)
	}
	sp := &Span{Name: "probe", StartUS: now, T: T.String()}
	r.bind(sp, r.search)
	r.search.Children = append(r.search.Children, sp)
	r.open = append(r.open, sp)
}

// ProbeFinished closes the matching open probe span.
func (r *SpanRecorder) ProbeFinished(T sched.Rat, accepted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.lastProbeEnd = now
	key := T.String()
	idx := -1
	for i, sp := range r.open {
		if sp.T == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(r.open) == 0 {
			return // unmatched finish; drop rather than corrupt the tree
		}
		idx = 0
	}
	sp := r.open[idx]
	r.open = append(r.open[:idx], r.open[idx+1:]...)
	sp.DurUS = now - sp.StartUS
	if accepted {
		sp.Outcome = "accept"
	} else {
		sp.Outcome = "reject"
	}
}

// SearchFinished closes the search span at the last probe's end, books
// the remainder (schedule construction) as the "build" span, and closes
// the root.  The solver emits it once after a successful solve.
func (r *SpanRecorder) SearchFinished(algorithm string, probes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if r.search != nil {
		r.search.DurUS = r.lastProbeEnd - r.search.StartUS
		r.search.Probes = probes
		// Book the build phase unconditionally: schedule construction
		// after the accepted guess can fit inside one microsecond tick,
		// and dropping the span then would lose the phase from
		// PhaseDurations and the slow-solve breakdown.
		build := &Span{
			Name: "build", StartUS: r.lastProbeEnd, DurUS: now - r.lastProbeEnd,
		}
		r.bind(build, r.root)
		r.root.Children = append(r.root.Children, build)
	}
	r.root.Algorithm = algorithm
	r.root.DurUS = now
	r.closed = true
}

// Root finalizes and returns the recorded tree.  If the solve never
// reported SearchFinished (error, cancellation), the root and any open
// spans are closed at the current time so the tree is still well-formed.
func (r *SpanRecorder) Root() *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		now := r.now()
		for _, sp := range r.open {
			sp.DurUS = now - sp.StartUS
		}
		r.open = r.open[:0]
		if r.search != nil && r.search.DurUS == 0 {
			r.search.DurUS = now - r.search.StartUS
		}
		r.root.DurUS = now
		r.closed = true
	}
	return r.root
}

// ProbeCounter is a zero-allocation Observer that counts finished dual
// tests into a Counter.  One ProbeCounter (boxed into the Observer
// interface once, at construction) can be shared by every solve of a
// server, so attaching metrics costs no per-request allocation.
type ProbeCounter struct {
	// C receives one Inc per finished probe.
	C *Counter
	// Searches, when non-nil, receives one Inc per completed search.
	Searches *Counter
}

func (p *ProbeCounter) ProbeStarted(sched.Rat) {}

func (p *ProbeCounter) ProbeFinished(sched.Rat, bool) { p.C.Inc() }

func (p *ProbeCounter) SearchFinished(string, int) {
	if p.Searches != nil {
		p.Searches.Inc()
	}
}
