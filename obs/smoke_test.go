package obs

import (
	"os"
	"testing"
)

// TestValidateExpositionFile validates a scrape written to the file named
// by SCHED_METRICS_FILE.  The Makefile's metrics-smoke target uses it to
// check a live schedserve scrape with the package's own parser instead of
// external tooling; without the variable the test is skipped.
func TestValidateExpositionFile(t *testing.T) {
	path := os.Getenv("SCHED_METRICS_FILE")
	if path == "" {
		t.Skip("SCHED_METRICS_FILE not set (used by `make metrics-smoke`)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty scrape")
	}
	if err := ValidateExposition(data); err != nil {
		t.Fatalf("invalid Prometheus exposition: %v", err)
	}
}
