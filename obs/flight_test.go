package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func rt(id string, durUS int64) RecordedTrace {
	return RecordedTrace{TraceID: id, DurUS: durUS, UnixUS: durUS + 1, Route: "solve"}
}

func TestFlightRecorderKeepsLastN(t *testing.T) {
	f := NewFlightRecorder(4, 0, 0)
	var recorded, dropped Counter
	f.SetCounters(&recorded, &dropped)
	for i := 0; i < 10; i++ {
		f.Record(rt(fmt.Sprintf("t%02d", i), int64(i)))
	}
	got := f.Snapshot("", 0, 0)
	if len(got) != 4 {
		t.Fatalf("kept %d traces, want 4", len(got))
	}
	for i, tr := range got {
		if want := fmt.Sprintf("t%02d", 6+i); tr.TraceID != want {
			t.Fatalf("slot %d = %s, want %s (oldest-first last-N)", i, tr.TraceID, want)
		}
	}
	if recorded.Load() != 10 || dropped.Load() != 6 {
		t.Fatalf("recorded=%d dropped=%d, want 10/6", recorded.Load(), dropped.Load())
	}
}

func TestFlightRecorderSlowRing(t *testing.T) {
	f := NewFlightRecorder(2, 8, 5*time.Millisecond)
	// Two slow traces, then enough fast ones to rotate them out of recent.
	f.Record(rt("slow-a", 9000))
	f.Record(rt("slow-b", 5000)) // exactly at threshold: kept
	for i := 0; i < 5; i++ {
		f.Record(rt(fmt.Sprintf("fast-%d", i), 100))
	}
	if got := f.Snapshot("slow-a", 0, 0); len(got) != 1 || !got[0].Slow {
		t.Fatalf("slow-a not retained in slow ring: %+v", got)
	}
	if got := f.Snapshot("slow-b", 0, 0); len(got) != 1 {
		t.Fatalf("threshold-equal trace not retained: %+v", got)
	}
	// min-duration filter hides the fast ones.
	if got := f.Snapshot("", 5*time.Millisecond, 0); len(got) != 2 {
		t.Fatalf("min_dur filter returned %d, want 2", len(got))
	}
	// A slow trace still inside the recent window is not duplicated.
	g := NewFlightRecorder(4, 4, time.Millisecond)
	g.Record(rt("both", 2000))
	if got := g.Snapshot("", 0, 0); len(got) != 1 {
		t.Fatalf("slow+recent trace duplicated: %d entries", len(got))
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	f := NewFlightRecorder(8, 0, 0)
	f.Record(rt("aaa", 1000))
	f.Record(rt("bbb", 9000))

	get := func(url string) (int, TracesResponse) {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		f.Handler().ServeHTTP(w, req)
		var body TracesResponse
		if w.Code == 200 {
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return w.Code, body
	}

	if code, body := get("/v1/debug/traces"); code != 200 || body.Count != 2 {
		t.Fatalf("unfiltered: code=%d count=%d", code, body.Count)
	}
	if _, body := get("/v1/debug/traces?trace_id=bbb"); body.Count != 1 || body.Traces[0].TraceID != "bbb" {
		t.Fatalf("trace_id filter: %+v", body)
	}
	if _, body := get("/v1/debug/traces?min_ms=5"); body.Count != 1 || body.Traces[0].TraceID != "bbb" {
		t.Fatalf("min_ms filter: %+v", body)
	}
	if _, body := get("/v1/debug/traces?limit=1"); body.Count != 1 {
		t.Fatalf("limit: %+v", body)
	}
	if code, _ := get("/v1/debug/traces?min_ms=nope"); code != 400 {
		t.Fatalf("bad min_ms not rejected: %d", code)
	}
	req := httptest.NewRequest("POST", "/v1/debug/traces", nil)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != 405 {
		t.Fatalf("POST allowed: %d", w.Code)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32, 32, time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(rt(fmt.Sprintf("g%d-%d", g, i), int64(i)))
				if i%50 == 0 {
					f.Snapshot("", 0, 10)
				}
			}
		}(g)
	}
	wg.Wait()
	recent, _ := f.Len()
	if recent != 32 {
		t.Fatalf("recent ring holds %d, want 32", recent)
	}
}
