package sched

import (
	"math/rand"
	"testing"
)

// TestCanonicalViewAgreesWithCanonicalize pins every view answer to the
// deep-copy path: same fingerprint, same canonical instance, and a
// collision check that accepts exactly the canonical forms Equal accepts.
func TestCanonicalViewAgreesWithCanonicalize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var v CanonicalView
	for trial := 0; trial < 8; trial++ {
		in := permute(fpTestInstance(), rng)
		canon := in.Canonicalize()
		v.Bind(in)
		if got, want := v.Fingerprint(), canon.Fingerprint(); got != want {
			t.Fatalf("view fingerprint %s != canonical %s", got, want)
		}
		if ci := v.CanonicalInstance(); !ci.Equal(canon.Instance) {
			t.Fatalf("CanonicalInstance differs from Canonicalize().Instance:\n%+v\n%+v",
				ci, canon.Instance)
		}
		if !v.MatchesCanonical(canon.Instance) {
			t.Fatal("view rejects its own canonical instance")
		}
		other := canon.Instance.Clone()
		other.Classes[0].Jobs[0]++
		if v.MatchesCanonical(other) {
			t.Fatal("view accepts a perturbed canonical instance")
		}
		if v.MatchesCanonical(nil) {
			t.Fatal("view accepts nil")
		}
	}
}

// TestCanonicalViewRemapAgreesWithCanonical pins the view's schedule
// remap to Canonical.FromCanonical slot for slot.
func TestCanonicalViewRemapAgreesWithCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := permute(fpTestInstance(), rng)
	canon := in.Canonicalize()
	var v CanonicalView
	v.Bind(in)

	s := &Schedule{Variant: NonPreemptive, T: R(40), Runs: make([]MachineRun, 2)}
	for i := range canon.Instance.Classes {
		m := i % 2
		s.Runs[m].Count++
		s.Runs[m].Slots = append(s.Runs[m].Slots, Slot{Kind: SlotSetup, Class: i, Job: -1, Start: R(0), End: R(1)})
		for j := range canon.Instance.Classes[i].Jobs {
			tl := canon.Instance.Classes[i].Jobs[j]
			s.Runs[m].Slots = append(s.Runs[m].Slots,
				Slot{Kind: SlotJob, Class: i, Job: j, Start: R(1), End: R(1 + tl)})
		}
	}
	got, want := v.FromCanonical(s), canon.FromCanonical(s)
	for m := range want.Runs {
		if got.Runs[m].Count != want.Runs[m].Count ||
			len(got.Runs[m].Slots) != len(want.Runs[m].Slots) {
			t.Fatalf("run %d shape differs", m)
		}
		for k, sl := range want.Runs[m].Slots {
			if got.Runs[m].Slots[k] != sl {
				t.Fatalf("run %d slot %d: got %+v want %+v", m, k, got.Runs[m].Slots[k], sl)
			}
		}
	}
}

// TestCanonicalViewReuseAllocs pins the serving-hot-path contract: a
// reused view re-binds and fingerprints with nothing allocated beyond
// the hex digest itself, independent of instance size.
func TestCanonicalViewReuseAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := &Instance{M: 9}
	for i := 0; i < 400; i++ {
		cl := Class{Setup: rng.Int63n(50)}
		for j := 0; j < 12; j++ {
			cl.Jobs = append(cl.Jobs, 1+rng.Int63n(99))
		}
		in.Classes = append(in.Classes, cl)
	}
	var v CanonicalView
	v.Bind(in) // warm the buffers
	if n := testing.AllocsPerRun(50, func() { v.Bind(in) }); n != 0 {
		t.Fatalf("warm Bind allocates %v per run, want 0", n)
	}
	// Fingerprint's only allocations are the fixed-size hex digest
	// conversion (independent of the 4800-job instance).
	if n := testing.AllocsPerRun(50, func() {
		v.Bind(in)
		_ = v.Fingerprint()
	}); n > 3 {
		t.Fatalf("warm Bind+Fingerprint allocates %v per run, want <= 3", n)
	}
}
