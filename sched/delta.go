package sched

import (
	"errors"
	"fmt"
)

// Delta ops understood by Delta.Apply.
const (
	// DeltaAddJobs appends Jobs to class Class.
	DeltaAddJobs = "add_jobs"
	// DeltaRemoveJob removes job index Job from class Class.
	DeltaRemoveJob = "remove_job"
	// DeltaSetSetup replaces class Class's setup time with Setup.
	DeltaSetSetup = "set_setup"
	// DeltaAddClass appends a new class with setup Setup and jobs Jobs.
	DeltaAddClass = "add_class"
	// DeltaRemoveClass removes class index Class.
	DeltaRemoveClass = "remove_class"
	// DeltaSetMachines replaces the machine count with M.
	DeltaSetMachines = "set_machines"
)

// Delta is one edit to an Instance: the unit of change of the streaming
// workload (stream.Session, the /v1/sessions serve API and schedgen's
// drift traces all speak this type).  The JSON form is the wire format of
// delta traces: {"op": "add_jobs", "class": 0, "jobs": [3, 4]}.
type Delta struct {
	// Op is one of the Delta* constants.
	Op string `json:"op"`
	// Class is the target class index (add_jobs, remove_job, set_setup,
	// remove_class).
	Class int `json:"class,omitempty"`
	// Job is the target job index within the class (remove_job).
	Job int `json:"job,omitempty"`
	// Jobs are the processing times to append (add_jobs, add_class).
	Jobs []int64 `json:"jobs,omitempty"`
	// Setup is the new setup time (set_setup, add_class).
	Setup int64 `json:"setup,omitempty"`
	// M is the new machine count (set_machines).
	M int64 `json:"m,omitempty"`
}

// String renders the delta compactly for logs and violation reports.
func (d Delta) String() string {
	switch d.Op {
	case DeltaAddJobs:
		return fmt.Sprintf("add_jobs(class=%d, jobs=%v)", d.Class, d.Jobs)
	case DeltaRemoveJob:
		return fmt.Sprintf("remove_job(class=%d, job=%d)", d.Class, d.Job)
	case DeltaSetSetup:
		return fmt.Sprintf("set_setup(class=%d, setup=%d)", d.Class, d.Setup)
	case DeltaAddClass:
		return fmt.Sprintf("add_class(setup=%d, jobs=%v)", d.Setup, d.Jobs)
	case DeltaRemoveClass:
		return fmt.Sprintf("remove_class(class=%d)", d.Class)
	case DeltaSetMachines:
		return fmt.Sprintf("set_machines(m=%d)", d.M)
	}
	return fmt.Sprintf("delta(op=%q)", d.Op)
}

var (
	errUnknownDeltaOp = errors.New("sched: unknown delta op")
	errLastJob        = errors.New("sched: cannot remove the last job of a class (remove the class instead)")
	errLastClass      = errors.New("sched: cannot remove the last class")
	errNoJobs         = errors.New("sched: delta needs at least one job")
)

// Apply validates the delta against the instance and applies it in place,
// returning the instance's new total load N.  The instance must already be
// valid (Instance.Validate); Apply preserves validity, rejecting any delta
// that would break a structural or magnitude invariant, and leaves the
// instance unchanged on error.  Removal ops are order-preserving (later
// indices shift down by one), so two replicas applying the same delta
// sequence stay bit-identical.
//
// Apply computes the current load with an O(n) pass; callers that track
// the load themselves (stream.Session does) use ApplyWithLoad.
func (d Delta) Apply(in *Instance) (int64, error) {
	return d.ApplyWithLoad(in, in.N())
}

// ApplyWithLoad is Apply with the instance's current total load n supplied
// by the caller, making every delta O(|delta|) plus the slice edit instead
// of O(n).  Passing a wrong n voids the magnitude checks.
func (d Delta) ApplyWithLoad(in *Instance, n int64) (int64, error) {
	switch d.Op {
	case DeltaAddJobs:
		if err := checkClassIndex(in, d.Class); err != nil {
			return n, err
		}
		add, err := jobsLoad(d.Jobs)
		if err != nil {
			return n, err
		}
		if err := checkLoad(in.M, n, add); err != nil {
			return n, err
		}
		in.Classes[d.Class].Jobs = append(in.Classes[d.Class].Jobs, d.Jobs...)
		return n + add, nil

	case DeltaRemoveJob:
		if err := checkClassIndex(in, d.Class); err != nil {
			return n, err
		}
		cl := &in.Classes[d.Class]
		if d.Job < 0 || d.Job >= len(cl.Jobs) {
			return n, fmt.Errorf("sched: job index %d out of range (class %d has %d jobs)", d.Job, d.Class, len(cl.Jobs))
		}
		if len(cl.Jobs) == 1 {
			return n, fmt.Errorf("%w (class %d)", errLastJob, d.Class)
		}
		t := cl.Jobs[d.Job]
		cl.Jobs = append(cl.Jobs[:d.Job], cl.Jobs[d.Job+1:]...)
		return n - t, nil

	case DeltaSetSetup:
		if err := checkClassIndex(in, d.Class); err != nil {
			return n, err
		}
		if d.Setup < 0 {
			return n, fmt.Errorf("%w (class %d)", errBadSetup, d.Class)
		}
		old := in.Classes[d.Class].Setup
		if err := checkLoad(in.M, n-old, d.Setup); err != nil {
			return n, err
		}
		in.Classes[d.Class].Setup = d.Setup
		return n - old + d.Setup, nil

	case DeltaAddClass:
		if d.Setup < 0 {
			return n, errBadSetup
		}
		add, err := jobsLoad(d.Jobs)
		if err != nil {
			return n, err
		}
		if err := checkLoad(in.M, n, add+d.Setup); err != nil {
			return n, err
		}
		in.Classes = append(in.Classes, Class{Setup: d.Setup, Jobs: append([]int64(nil), d.Jobs...)})
		return n + add + d.Setup, nil

	case DeltaRemoveClass:
		if err := checkClassIndex(in, d.Class); err != nil {
			return n, err
		}
		if len(in.Classes) == 1 {
			return n, errLastClass
		}
		cl := in.Classes[d.Class]
		removed := cl.Setup + cl.Work()
		in.Classes = append(in.Classes[:d.Class], in.Classes[d.Class+1:]...)
		return n - removed, nil

	case DeltaSetMachines:
		if d.M < 1 {
			return n, errNoMachines
		}
		if d.M > MaxMachines {
			return n, errTooManyMach
		}
		if err := checkLoad(d.M, n, 0); err != nil {
			return n, err
		}
		in.M = d.M
		return n, nil
	}
	return n, fmt.Errorf("%w %q", errUnknownDeltaOp, d.Op)
}

// LoadShift returns how the delta moves the instance's total load N when
// applied to in: added counts new load, removed counts dropped load (both
// >= 0; a set_setup contributes to exactly one of them).  It does not
// mutate the instance and reports zeros for deltas Apply would reject.
// Warm-start bracket seeding shifts the previous certified [reject,
// accept] pair by exactly these amounts.
func (d Delta) LoadShift(in *Instance) (added, removed int64) {
	switch d.Op {
	case DeltaAddJobs, DeltaAddClass:
		for _, t := range d.Jobs {
			if t >= 1 {
				added += t
			}
		}
		if d.Op == DeltaAddClass && d.Setup > 0 {
			added += d.Setup
		}
	case DeltaRemoveJob:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			if cl := &in.Classes[d.Class]; d.Job >= 0 && d.Job < len(cl.Jobs) {
				removed = cl.Jobs[d.Job]
			}
		}
	case DeltaSetSetup:
		if d.Class >= 0 && d.Class < len(in.Classes) && d.Setup >= 0 {
			if diff := d.Setup - in.Classes[d.Class].Setup; diff > 0 {
				added = diff
			} else {
				removed = -diff
			}
		}
	case DeltaRemoveClass:
		if d.Class >= 0 && d.Class < len(in.Classes) {
			cl := &in.Classes[d.Class]
			removed = cl.Setup + cl.Work()
		}
	}
	return added, removed
}

func checkClassIndex(in *Instance, i int) error {
	if i < 0 || i >= len(in.Classes) {
		return fmt.Errorf("sched: class index %d out of range (instance has %d classes)", i, len(in.Classes))
	}
	return nil
}

// jobsLoad validates a job list and returns its total processing time.
func jobsLoad(jobs []int64) (int64, error) {
	if len(jobs) == 0 {
		return 0, errNoJobs
	}
	var sum int64
	for i, t := range jobs {
		if t < 1 {
			return 0, fmt.Errorf("%w (job %d)", errBadJob, i)
		}
		sum += t
		if sum > MaxTotalLoad {
			return 0, errLoadOverflow
		}
	}
	return sum, nil
}

// checkLoad asserts the magnitude contract for load n+add on m machines:
// N <= MaxTotalLoad and m*N <= MaxMachineLoadProduct.
func checkLoad(m, n, add int64) error {
	n += add
	if n > MaxTotalLoad {
		return errLoadOverflow
	}
	if m > 0 && n > 0 && n > MaxMachineLoadProduct/m {
		return errTooLarge
	}
	return nil
}
