// Package sched defines the problem model for scheduling with batch setup
// times: instances (machines, job classes, setup times), schedules with
// exact rational time stamps, per-variant feasibility validation, and the
// exact rational arithmetic they are built on.
//
// The model follows Deppert & Jansen, "Near-Linear Approximation Algorithms
// for Scheduling Problems with Batch Setup Times" (SPAA 2019): n jobs are
// partitioned into c classes on m identical machines; a sequence-independent
// setup s_i must be scheduled whenever a machine starts processing jobs of
// class i or switches to class i from another class; setups are never
// preempted; the objective is to minimize the makespan.
package sched

import (
	"errors"
	"fmt"
)

// Variant selects one of the three problem flavors studied in the paper.
type Variant int

const (
	// Splittable allows jobs to be preempted and parallelized:
	// P | split, setup=s_i | Cmax.
	Splittable Variant = iota
	// Preemptive allows jobs to be preempted but not parallelized (a job
	// may run on at most one machine at any moment):
	// P | pmtn, setup=s_i | Cmax.
	Preemptive
	// NonPreemptive forbids preemption entirely:
	// P | setup=s_i | Cmax.
	NonPreemptive
)

// String returns the Graham-notation name of the variant.
func (v Variant) String() string {
	switch v {
	case Splittable:
		return "P|split,setup=s_i|Cmax"
	case Preemptive:
		return "P|pmtn,setup=s_i|Cmax"
	case NonPreemptive:
		return "P|setup=s_i|Cmax"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Short returns a short lowercase name for the variant.
func (v Variant) Short() string {
	switch v {
	case Splittable:
		return "splittable"
	case Preemptive:
		return "preemptive"
	case NonPreemptive:
		return "nonpreemptive"
	}
	return fmt.Sprintf("variant%d", int(v))
}

// Variants lists all three problem variants.
var Variants = []Variant{Splittable, Preemptive, NonPreemptive}

// Class is one batch class: a setup time and the processing times of the
// jobs belonging to the class.
type Class struct {
	// Setup is the sequence-independent setup time s_i >= 0.
	Setup int64 `json:"setup"`
	// Jobs holds the processing times t_j >= 1 of the jobs in this class.
	Jobs []int64 `json:"jobs"`
}

// Work returns the total processing time P(C_i) of the class.
func (c *Class) Work() int64 {
	var p int64
	for _, t := range c.Jobs {
		p += t
	}
	return p
}

// MaxJob returns max_{j in C_i} t_j, or 0 for an empty class.
func (c *Class) MaxJob() int64 {
	var mx int64
	for _, t := range c.Jobs {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// Instance is a problem instance: m identical machines and c job classes.
type Instance struct {
	// M is the number of identical parallel machines (m >= 1).
	M int64 `json:"m"`
	// Classes holds the c job classes; every class must be nonempty.
	Classes []Class `json:"classes"`
}

// Magnitude limits accepted by Validate.  They guarantee that all exact
// rational arithmetic performed by the solvers stays within int64
// numerators and denominators (products are evaluated in 128 bits).
const (
	// MaxMachines bounds the machine count m.
	MaxMachines = int64(1) << 31
	// MaxTotalLoad bounds N = sum of all setups and processing times.
	MaxTotalLoad = int64(1) << 53
	// MaxMachineLoadProduct bounds m*N, which bounds every numerator the
	// solvers can produce (schedule times are < (3/2)*N with denominators
	// in O(m)).
	MaxMachineLoadProduct = int64(1) << 56
)

var (
	errNoMachines   = errors.New("sched: instance needs at least one machine")
	errNoClasses    = errors.New("sched: instance needs at least one class")
	errEmptyClass   = errors.New("sched: classes must be nonempty")
	errBadJob       = errors.New("sched: job processing times must be >= 1")
	errBadSetup     = errors.New("sched: setup times must be >= 0")
	errTooLarge     = errors.New("sched: instance exceeds supported magnitude limits")
	errTooManyMach  = errors.New("sched: machine count exceeds supported limit")
	errLoadOverflow = errors.New("sched: total load overflows supported limit")
)

// Validate checks structural validity and the documented magnitude limits.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return errNoMachines
	}
	if in.M > MaxMachines {
		return errTooManyMach
	}
	if len(in.Classes) == 0 {
		return errNoClasses
	}
	var n int64
	for i := range in.Classes {
		c := &in.Classes[i]
		if len(c.Jobs) == 0 {
			return fmt.Errorf("%w (class %d)", errEmptyClass, i)
		}
		if c.Setup < 0 {
			return fmt.Errorf("%w (class %d)", errBadSetup, i)
		}
		n += c.Setup
		if n > MaxTotalLoad {
			return errLoadOverflow
		}
		for j, t := range c.Jobs {
			if t < 1 {
				return fmt.Errorf("%w (class %d job %d)", errBadJob, i, j)
			}
			n += t
			if n > MaxTotalLoad {
				return errLoadOverflow
			}
		}
	}
	// m*N bound, compared via division to stay within int64.
	if in.M > 0 && n > 0 && n > MaxMachineLoadProduct/in.M {
		return errTooLarge
	}
	return nil
}

// NumClasses returns c.
func (in *Instance) NumClasses() int { return len(in.Classes) }

// NumJobs returns n, the total number of jobs.
func (in *Instance) NumJobs() int {
	n := 0
	for i := range in.Classes {
		n += len(in.Classes[i].Jobs)
	}
	return n
}

// TotalWork returns P(J), the sum of all processing times.
func (in *Instance) TotalWork() int64 {
	var p int64
	for i := range in.Classes {
		p += in.Classes[i].Work()
	}
	return p
}

// TotalSetup returns the sum of all setup times (one per class).
func (in *Instance) TotalSetup() int64 {
	var s int64
	for i := range in.Classes {
		s += in.Classes[i].Setup
	}
	return s
}

// N returns the trivial upper bound N = sum_i s_i + sum_j t_j
// (everything on one machine, one setup per class).
func (in *Instance) N() int64 { return in.TotalWork() + in.TotalSetup() }

// MaxSetup returns s_max.
func (in *Instance) MaxSetup() int64 {
	var mx int64
	for i := range in.Classes {
		if in.Classes[i].Setup > mx {
			mx = in.Classes[i].Setup
		}
	}
	return mx
}

// MaxSetupPlusJob returns max_i (s_i + t_max^(i)), a lower bound on OPT for
// the preemptive and non-preemptive variants (paper Notes 1 and 2).
func (in *Instance) MaxSetupPlusJob() int64 {
	var mx int64
	for i := range in.Classes {
		v := in.Classes[i].Setup + in.Classes[i].MaxJob()
		if v > mx {
			mx = v
		}
	}
	return mx
}

// LowerBound returns the variant-specific trivial lower bound T_min on OPT:
//
//	splittable:              max(N/m, s_max)
//	preemptive/nonpreemptive: max(N/m, max_i(s_i + t_max^(i)))
//
// For the non-preemptive variant OPT is integral, so the bound is rounded
// up to the next integer.
func (in *Instance) LowerBound(v Variant) Rat {
	perMachine := RatOf(in.N(), in.M)
	switch v {
	case Splittable:
		return MaxRat(perMachine, R(in.MaxSetup()))
	case Preemptive:
		return MaxRat(perMachine, R(in.MaxSetupPlusJob()))
	default:
		lb := MaxRat(perMachine, R(in.MaxSetupPlusJob()))
		return R(lb.Ceil())
	}
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{M: in.M, Classes: make([]Class, len(in.Classes))}
	for i := range in.Classes {
		out.Classes[i] = Class{
			Setup: in.Classes[i].Setup,
			Jobs:  append([]int64(nil), in.Classes[i].Jobs...),
		}
	}
	return out
}
