package sched

import (
	"encoding/json"
	"testing"
)

func TestComputeStats(t *testing.T) {
	in := twoClassInstance() // class0: s=2 jobs 3,4; class1: s=1 job 5
	s := buildSimpleSchedule(in, NonPreemptive)
	st := s.ComputeStats(in.NumClasses())
	if !st.Makespan.Equal(R(9)) {
		t.Errorf("makespan %s", st.Makespan)
	}
	if st.Machines != 2 {
		t.Errorf("machines %d", st.Machines)
	}
	if !st.SetupTime.Equal(R(3)) || !st.WorkTime.Equal(R(12)) {
		t.Errorf("setup %s work %s", st.SetupTime, st.WorkTime)
	}
	if !st.IdleTime.Equal(R(3)) { // 2*9 - 3 - 12
		t.Errorf("idle %s", st.IdleTime)
	}
	if st.Setups != 2 || st.SetupsPerClass[0] != 1 || st.SetupsPerClass[1] != 1 {
		t.Errorf("setup counts %+v", st)
	}
	if u := st.Utilization(); u < 0.66 || u > 0.67 {
		t.Errorf("utilization %f", u)
	}
	if o := st.SetupOverhead(); o < 0.19 || o > 0.21 {
		t.Errorf("overhead %f", o)
	}
}

func TestStatsWithRuns(t *testing.T) {
	s := &Schedule{Variant: Splittable}
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(2))
	b.Place(SlotJob, 0, 0, R(4))
	s.AddRun(10, b.Slots())
	st := s.ComputeStats(1)
	if st.Machines != 10 || st.Setups != 10 {
		t.Errorf("run accounting: %+v", st)
	}
	if !st.WorkTime.Equal(R(40)) || !st.SetupTime.Equal(R(20)) {
		t.Errorf("times: %+v", st)
	}
}

func TestRatJSONRoundTrip(t *testing.T) {
	for _, r := range []Rat{R(5), RatOf(7, 3), RatOf(-9, 4), {}} {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Rat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(r) {
			t.Errorf("round trip %s -> %s", r, back)
		}
	}
	// Bare numbers are accepted.
	var r Rat
	if err := json.Unmarshal([]byte("42"), &r); err != nil || !r.Equal(R(42)) {
		t.Errorf("bare number: %s, %v", r, err)
	}
	if err := json.Unmarshal([]byte(`"1/0"`), &r); err == nil {
		t.Error("zero denominator accepted")
	}
	if err := json.Unmarshal([]byte(`"x"`), &r); err == nil {
		t.Error("garbage accepted")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	in := twoClassInstance()
	for _, v := range Variants {
		s := buildSimpleSchedule(in, v)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Schedule
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(in); err != nil {
			t.Fatalf("%v: restored schedule invalid: %v", v, err)
		}
		if !back.Makespan().Equal(s.Makespan()) || back.Variant != s.Variant {
			t.Errorf("%v: round trip changed schedule", v)
		}
	}
	var bad Schedule
	if err := json.Unmarshal([]byte(`{"variant":"weird"}`), &bad); err == nil {
		t.Error("unknown variant accepted")
	}
}
