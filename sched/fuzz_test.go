package sched

import (
	"math/rand"
	"testing"
)

// fuzzInstance decodes an instance from raw fuzz bytes: a machine count
// plus a byte stream consumed as (setup, jobCount, jobs...) records.  The
// decoder never fails — any input yields a small valid instance — so the
// fuzzer spends its budget on structure, not on satisfying a parser.
func fuzzInstance(m int64, data []byte) *Instance {
	next := func() int64 {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int64(b)
	}
	in := &Instance{M: 1 + absInt64(m)%6}
	classes := 1 + int(next())%6
	for c := 0; c < classes; c++ {
		cl := Class{Setup: next() % 32}
		jobs := 1 + int(next())%5
		for j := 0; j < jobs; j++ {
			cl.Jobs = append(cl.Jobs, 1+next()%48)
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

func absInt64(x int64) int64 {
	if x < 0 {
		if x == -1<<63 {
			return 0
		}
		return -x
	}
	return x
}

// permuteInstance returns a copy with classes shuffled and the jobs inside
// every class shuffled, driven by the given deterministic source.
func permuteInstance(in *Instance, rng *rand.Rand) *Instance {
	out := in.Clone()
	rng.Shuffle(len(out.Classes), func(a, b int) {
		out.Classes[a], out.Classes[b] = out.Classes[b], out.Classes[a]
	})
	for i := range out.Classes {
		jobs := out.Classes[i].Jobs
		rng.Shuffle(len(jobs), func(a, b int) {
			jobs[a], jobs[b] = jobs[b], jobs[a]
		})
	}
	return out
}

// FuzzFingerprintCanonicalRoundTrip checks, for arbitrary instances and
// arbitrary permutations of their classes and jobs:
//
//   - Fingerprint is permutation-invariant (the cache-correctness property
//     the serving layer relies on);
//   - the canonical instances of the original and the permutation are
//     byte-identical;
//   - the canonical index maps are true inverses: remapping any schedule
//     ToCanonical and back FromCanonical is the identity.
func FuzzFingerprintCanonicalRoundTrip(f *testing.F) {
	f.Add(int64(3), int64(1), []byte{2, 5, 2, 7, 9, 1, 1, 3})
	f.Add(int64(1), int64(99), []byte{0})
	f.Add(int64(5), int64(-17), []byte{4, 0, 3, 1, 1, 1, 30, 2, 30, 30})
	f.Fuzz(func(t *testing.T, m, permSeed int64, data []byte) {
		in := fuzzInstance(m, data)
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder produced invalid instance: %v", err)
		}
		perm := permuteInstance(in, rand.New(rand.NewSource(permSeed)))

		if got, want := perm.Fingerprint(), in.Fingerprint(); got != want {
			t.Fatalf("fingerprint not permutation-invariant: %s != %s", got, want)
		}
		ci, cp := in.Canonicalize(), perm.Canonicalize()
		if !ci.Instance.Equal(cp.Instance) {
			t.Fatalf("canonical instances differ:\n%+v\n%+v", ci.Instance, cp.Instance)
		}

		// Round trip: a schedule touching every (class, job) pair must
		// survive ToCanonical then FromCanonical unchanged.
		s := enumerationSchedule(in)
		rt := ci.FromCanonical(ci.ToCanonical(s))
		if !schedulesIdentical(s, rt) {
			t.Fatalf("ToCanonical/FromCanonical round trip changed the schedule:\n%v\n%v", s, rt)
		}
		// And the permuted instance's maps must translate its indexing
		// into the same canonical slots as the original's.
		sp := enumerationSchedule(perm)
		if !schedulesSameShape(ci.ToCanonical(s), cp.ToCanonical(sp)) {
			t.Fatal("canonical schedules of permuted twins differ in shape")
		}
	})
}

// enumerationSchedule lays every setup and job of the instance end to end
// on one machine — not an optimized schedule, but a feasible-shaped one
// that mentions every index exactly once.
func enumerationSchedule(in *Instance) *Schedule {
	b := NewMachineBuilder()
	for c := range in.Classes {
		b.Place(SlotSetup, c, -1, R(in.Classes[c].Setup+1))
		for j, tj := range in.Classes[c].Jobs {
			b.Place(SlotJob, c, j, R(tj))
		}
	}
	s := &Schedule{Variant: NonPreemptive}
	s.AddMachine(b.Slots())
	s.T = s.Makespan()
	return s
}

func schedulesIdentical(a, b *Schedule) bool {
	if a.Variant != b.Variant || !a.T.Equal(b.T) || len(a.Runs) != len(b.Runs) {
		return false
	}
	for i := range a.Runs {
		if a.Runs[i].Count != b.Runs[i].Count || len(a.Runs[i].Slots) != len(b.Runs[i].Slots) {
			return false
		}
		for j, sa := range a.Runs[i].Slots {
			sb := b.Runs[i].Slots[j]
			if sa.Kind != sb.Kind || sa.Class != sb.Class || sa.Job != sb.Job ||
				!sa.Start.Equal(sb.Start) || !sa.End.Equal(sb.End) {
				return false
			}
		}
	}
	return true
}

// schedulesSameShape compares slot index targets and multiplicities while
// ignoring times (the enumeration schedules of permuted twins visit the
// same canonical indices in different orders at different offsets).
func schedulesSameShape(a, b *Schedule) bool {
	count := func(s *Schedule) map[[3]int]int {
		m := map[[3]int]int{}
		for i := range s.Runs {
			for _, sl := range s.Runs[i].Slots {
				m[[3]int{int(sl.Kind), sl.Class, sl.Job}]++
			}
		}
		return m
	}
	ca, cb := count(a), count(b)
	if len(ca) != len(cb) {
		return false
	}
	for k, v := range ca {
		if cb[k] != v {
			return false
		}
	}
	return true
}
