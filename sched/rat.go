package sched

import (
	"fmt"
	"math"

	"setupsched/internal/num128"
)

// Rat is an exact rational number with 64-bit numerator and denominator.
//
// All makespans and schedule times in this module are represented as Rats.
// The algorithms of Deppert & Jansen (SPAA 2019) place load at fractions of
// a rational makespan guess T = p/q (T/4, T/2, ...), and the exact 3/2
// approximation guarantee depends on exact comparisons of such values, so
// floating point is not an option.
//
// Rats are always kept normalized (gcd(|num|, den) = 1, den >= 1).  The
// zero value is the number 0.  Arithmetic panics with ErrRatOverflow on
// int64 overflow; the documented instance magnitude limits enforced by
// Instance.Validate guarantee that overflow is unreachable for all values
// produced by this module's solvers.
type Rat struct {
	n, d int64 // d == 0 encodes the zero value (treated as 0/1)
}

// ErrRatOverflow is the panic value used when rational arithmetic would
// overflow an int64.
var ErrRatOverflow = fmt.Errorf("sched: rational arithmetic overflow (instance exceeds documented magnitude limits)")

// R returns the Rat with integer value n.
func R(n int64) Rat { return Rat{n, 1} }

// RatOf returns the normalized rational n/d.  It panics if d == 0.
func RatOf(n, d int64) Rat {
	if d == 0 {
		panic("sched: RatOf with zero denominator")
	}
	if d < 0 {
		if n == math.MinInt64 || d == math.MinInt64 {
			panic(ErrRatOverflow)
		}
		n, d = -n, -d
	}
	g := gcd64(abs64(n), d)
	if g > 1 {
		n /= g
		d /= g
	}
	return Rat{n, d}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == math.MinInt64 {
			panic(ErrRatOverflow)
		}
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func addChecked(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		panic(ErrRatOverflow)
	}
	return s
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		panic(ErrRatOverflow)
	}
	return p
}

// Num returns the normalized numerator.
func (r Rat) Num() int64 { return r.n }

// Den returns the normalized denominator (always >= 1).
func (r Rat) Den() int64 {
	if r.d == 0 {
		return 1
	}
	return r.d
}

// Sign returns -1, 0 or 1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.n < 0:
		return -1
	case r.n > 0:
		return 1
	}
	return 0
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.n == 0 }

// Neg returns -r.
func (r Rat) Neg() Rat {
	if r.n == math.MinInt64 {
		panic(ErrRatOverflow)
	}
	return Rat{-r.n, r.Den()}
}

// Add returns r + o.
func (r Rat) Add(o Rat) Rat {
	rd, od := r.Den(), o.Den()
	if rd == od {
		return RatOf(addChecked(r.n, o.n), rd)
	}
	g := gcd64(rd, od)
	// lcm = rd/g * od
	n := addChecked(mulChecked(r.n, od/g), mulChecked(o.n, rd/g))
	d := mulChecked(rd/g, od)
	return RatOf(n, d)
}

// Sub returns r - o.
func (r Rat) Sub(o Rat) Rat { return r.Add(o.Neg()) }

// AddInt returns r + x.
func (r Rat) AddInt(x int64) Rat {
	d := r.Den()
	return Rat{addChecked(r.n, mulChecked(x, d)), d}
}

// SubInt returns r - x.
func (r Rat) SubInt(x int64) Rat {
	if x == math.MinInt64 {
		panic(ErrRatOverflow)
	}
	return r.AddInt(-x)
}

// MulInt returns r * x.
func (r Rat) MulInt(x int64) Rat {
	d := r.Den()
	neg := false
	if x < 0 {
		x = abs64(x)
		neg = true
	}
	g := gcd64(x, d)
	n := mulChecked(r.n, x/g)
	if neg {
		n = -n
	}
	return Rat{n, d / g}
}

// DivInt returns r / x for x != 0.
func (r Rat) DivInt(x int64) Rat {
	if x == 0 {
		panic("sched: Rat.DivInt by zero")
	}
	neg := false
	if x < 0 {
		x = abs64(x)
		neg = true
	}
	nn := r.n
	g := gcd64(abs64(nn), x)
	nn /= g
	if neg {
		nn = -nn
	}
	return Rat{nn, mulChecked(r.Den(), x/g)}
}

// Mul returns r * o.
func (r Rat) Mul(o Rat) Rat {
	// Cross-reduce before multiplying to limit intermediate magnitude.
	g1 := gcd64(abs64(r.n), o.Den())
	g2 := gcd64(abs64(o.n), r.Den())
	n := mulChecked(r.n/g1, o.n/g2)
	d := mulChecked(r.Den()/g2, o.Den()/g1)
	return Rat{n, d}
}

// Half returns r / 2.
func (r Rat) Half() Rat { return r.DivInt(2) }

// Quarter returns r / 4.
func (r Rat) Quarter() Rat { return r.DivInt(4) }

// Cmp compares r and o, returning -1, 0, or 1.
func (r Rat) Cmp(o Rat) int {
	return num128.CmpProd(r.n, o.Den(), o.n, r.Den())
}

// Less reports r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// Leq reports r <= o.
func (r Rat) Leq(o Rat) bool { return r.Cmp(o) <= 0 }

// Equal reports r == o.
func (r Rat) Equal(o Rat) bool { return r.n == o.n && r.Den() == o.Den() }

// CmpInt compares r with the integer x.
func (r Rat) CmpInt(x int64) int {
	return num128.CmpProd(r.n, 1, x, r.Den())
}

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	d := r.Den()
	q := r.n / d
	if r.n%d != 0 && r.n < 0 {
		q--
	}
	return q
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	d := r.Den()
	q := r.n / d
	if r.n%d != 0 && r.n > 0 {
		q++
	}
	return q
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Float64 returns a float64 approximation of r, for reporting only.
func (r Rat) Float64() float64 { return float64(r.n) / float64(r.Den()) }

// String formats r as "p" or "p/q".
func (r Rat) String() string {
	if r.Den() == 1 {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, r.Den())
}

// MaxRat returns the larger of a and b.
func MaxRat(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// MinRat returns the smaller of a and b.
func MinRat(a, b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// CeilDivInt returns ceil(x / t) for x >= 0 and t > 0.
// This is the exact machine-count primitive: e.g. beta_i = ceil(2 P_i / T).
func CeilDivInt(x int64, t Rat) int64 {
	if x < 0 || t.Sign() <= 0 {
		panic("sched: CeilDivInt domain error")
	}
	v, ok := num128.CeilDiv(x, t.Den(), t.n)
	if !ok {
		panic(ErrRatOverflow)
	}
	return v
}

// FloorDivInt returns floor(x / t) for x >= 0 and t > 0.
func FloorDivInt(x int64, t Rat) int64 {
	if x < 0 || t.Sign() <= 0 {
		panic("sched: FloorDivInt domain error")
	}
	v, ok := num128.FloorDiv(x, t.Den(), t.n)
	if !ok {
		panic(ErrRatOverflow)
	}
	return v
}

// Mid returns a value strictly between a and b (a < b required),
// preferring small denominators: it returns the integer midpoint when the
// open interval (a, b) contains an integer, and otherwise snaps the exact
// midpoint to the coarsest power-of-two lattice that still lies inside.
func Mid(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		panic("sched: Mid requires a < b")
	}
	// Try integers first: smallest integer > a.
	lo := a.Floor() + 1
	if R(lo).Less(b) && a.Less(R(lo)) {
		hi := b.Ceil() - 1
		m := lo + (hi-lo)/2
		if a.Less(R(m)) && R(m).Less(b) {
			return R(m)
		}
		return R(lo)
	}
	// Exact midpoint with growing denominator; snap to power-of-two grid.
	for den := int64(2); den <= 1<<40; den *= 2 {
		// smallest multiple of 1/den strictly greater than a
		k := a.MulInt(den).Floor() + 1
		cand := RatOf(k, den)
		if a.Less(cand) && cand.Less(b) {
			return cand
		}
	}
	// Fall back to the exact midpoint.
	return a.Add(b).Half()
}
