package sched

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratBig(r Rat) *big.Rat { return big.NewRat(r.Num(), r.Den()) }

func randRat(rng *rand.Rand) Rat {
	return RatOf(rng.Int63n(1<<30)-(1<<29), rng.Int63n(1<<15)+1)
}

func TestRatNormalization(t *testing.T) {
	cases := []struct {
		n, d, wn, wd int64
	}{
		{6, 4, 3, 2},
		{-6, 4, -3, 2},
		{6, -4, -3, 2},
		{0, 7, 0, 1},
		{5, 1, 5, 1},
		{7, 7, 1, 1},
	}
	for _, c := range cases {
		r := RatOf(c.n, c.d)
		if r.Num() != c.wn || r.Den() != c.wd {
			t.Errorf("RatOf(%d,%d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wn, c.wd)
		}
	}
}

func TestRatZeroValue(t *testing.T) {
	var z Rat
	if !z.IsZero() || z.Den() != 1 || z.Sign() != 0 {
		t.Errorf("zero value broken: %v den=%d sign=%d", z, z.Den(), z.Sign())
	}
	if got := z.AddInt(5); got.CmpInt(5) != 0 {
		t.Errorf("zero.AddInt(5) = %s", got)
	}
	if got := z.Add(R(3)); got.CmpInt(3) != 0 {
		t.Errorf("zero.Add(3) = %s", got)
	}
}

func TestRatArithmeticAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b := randRat(rng), randRat(rng)
		x := rng.Int63n(1<<20) - (1 << 19)
		if got, want := ratBig(a.Add(b)), new(big.Rat).Add(ratBig(a), ratBig(b)); got.Cmp(want) != 0 {
			t.Fatalf("%s + %s = %s, want %s", a, b, got, want)
		}
		if got, want := ratBig(a.Sub(b)), new(big.Rat).Sub(ratBig(a), ratBig(b)); got.Cmp(want) != 0 {
			t.Fatalf("%s - %s = %s, want %s", a, b, got, want)
		}
		if got, want := ratBig(a.Mul(b)), new(big.Rat).Mul(ratBig(a), ratBig(b)); got.Cmp(want) != 0 {
			t.Fatalf("%s * %s = %s, want %s", a, b, got, want)
		}
		if got, want := ratBig(a.MulInt(x)), new(big.Rat).Mul(ratBig(a), big.NewRat(x, 1)); got.Cmp(want) != 0 {
			t.Fatalf("%s * %d = %s, want %s", a, x, got, want)
		}
		if got, want := ratBig(a.AddInt(x)), new(big.Rat).Add(ratBig(a), big.NewRat(x, 1)); got.Cmp(want) != 0 {
			t.Fatalf("%s + %d = %s, want %s", a, x, got, want)
		}
		if got, want := a.Cmp(b), ratBig(a).Cmp(ratBig(b)); got != want {
			t.Fatalf("cmp(%s,%s) = %d, want %d", a, b, got, want)
		}
		if x != 0 {
			if got, want := ratBig(a.DivInt(x)), new(big.Rat).Quo(ratBig(a), big.NewRat(x, 1)); got.Cmp(want) != 0 {
				t.Fatalf("%s / %d = %s, want %s", a, x, got, want)
			}
		}
	}
}

func TestRatFloorCeil(t *testing.T) {
	cases := []struct {
		r          Rat
		floor, cel int64
	}{
		{RatOf(7, 2), 3, 4},
		{RatOf(-7, 2), -4, -3},
		{R(5), 5, 5},
		{R(-5), -5, -5},
		{RatOf(1, 3), 0, 1},
		{RatOf(-1, 3), -1, 0},
		{Rat{}, 0, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("(%s).Floor() = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.cel {
			t.Errorf("(%s).Ceil() = %d, want %d", c.r, got, c.cel)
		}
	}
}

func TestCeilFloorDivInt(t *testing.T) {
	// ceil(10 / (7/2)) = ceil(20/7) = 3
	if got := CeilDivInt(10, RatOf(7, 2)); got != 3 {
		t.Errorf("CeilDivInt = %d, want 3", got)
	}
	if got := FloorDivInt(10, RatOf(7, 2)); got != 2 {
		t.Errorf("FloorDivInt = %d, want 2", got)
	}
	if got := CeilDivInt(14, RatOf(7, 2)); got != 4 {
		t.Errorf("CeilDivInt exact = %d, want 4", got)
	}
}

func TestMid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a := randRat(rng)
		b := a.Add(RatOf(rng.Int63n(1<<20)+1, rng.Int63n(1<<10)+1))
		m := Mid(a, b)
		if !a.Less(m) || !m.Less(b) {
			t.Fatalf("Mid(%s,%s) = %s not strictly inside", a, b, m)
		}
	}
	// Narrow interval without integers inside.
	a, b := RatOf(5, 3), RatOf(17, 10)
	m := Mid(a, b)
	if !a.Less(m) || !m.Less(b) {
		t.Fatalf("Mid(%s,%s) = %s not inside", a, b, m)
	}
}

func TestRatString(t *testing.T) {
	if s := RatOf(6, 4).String(); s != "3/2" {
		t.Errorf("String = %q", s)
	}
	if s := R(17).String(); s != "17" {
		t.Errorf("String = %q", s)
	}
}

func TestMaxMinRat(t *testing.T) {
	a, b := RatOf(1, 2), RatOf(2, 3)
	if MaxRat(a, b) != b || MinRat(a, b) != a {
		t.Error("MaxRat/MinRat broken")
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(an, bn int64, ad, bd uint16) bool {
		a := RatOf(an%(1<<30), int64(ad)+1)
		b := RatOf(bn%(1<<30), int64(bd)+1)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHalfDouble(t *testing.T) {
	f := func(n int64, d uint16) bool {
		r := RatOf(n%(1<<40), int64(d)+1)
		return r.Half().MulInt(2).Equal(r) && r.Quarter().MulInt(4).Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	huge := R(1 << 62)
	huge.MulInt(1 << 10) // must panic
}
