package sched

import (
	"strings"
	"testing"
)

func twoClassInstance() *Instance {
	return &Instance{
		M: 2,
		Classes: []Class{
			{Setup: 2, Jobs: []int64{3, 4}},
			{Setup: 1, Jobs: []int64{5}},
		},
	}
}

func TestInstanceStats(t *testing.T) {
	in := twoClassInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := in.NumJobs(); got != 3 {
		t.Errorf("NumJobs = %d", got)
	}
	if got := in.NumClasses(); got != 2 {
		t.Errorf("NumClasses = %d", got)
	}
	if got := in.TotalWork(); got != 12 {
		t.Errorf("TotalWork = %d", got)
	}
	if got := in.TotalSetup(); got != 3 {
		t.Errorf("TotalSetup = %d", got)
	}
	if got := in.N(); got != 15 {
		t.Errorf("N = %d", got)
	}
	if got := in.MaxSetup(); got != 2 {
		t.Errorf("MaxSetup = %d", got)
	}
	if got := in.MaxSetupPlusJob(); got != 6 {
		t.Errorf("MaxSetupPlusJob = %d", got)
	}
}

func TestInstanceLowerBounds(t *testing.T) {
	in := twoClassInstance() // N=15, m=2 -> N/m = 15/2; s_max=2; max(s+t)=6
	if got := in.LowerBound(Splittable); !got.Equal(RatOf(15, 2)) {
		t.Errorf("split LB = %s", got)
	}
	if got := in.LowerBound(Preemptive); !got.Equal(RatOf(15, 2)) {
		t.Errorf("pmtn LB = %s", got)
	}
	if got := in.LowerBound(NonPreemptive); !got.Equal(R(8)) {
		t.Errorf("nonp LB = %s (integral ceil expected)", got)
	}
}

func TestInstanceValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		want string
	}{
		{"no machines", Instance{M: 0, Classes: []Class{{Setup: 1, Jobs: []int64{1}}}}, "machine"},
		{"no classes", Instance{M: 1}, "class"},
		{"empty class", Instance{M: 1, Classes: []Class{{Setup: 1}}}, "nonempty"},
		{"zero job", Instance{M: 1, Classes: []Class{{Setup: 1, Jobs: []int64{0}}}}, ">= 1"},
		{"negative setup", Instance{M: 1, Classes: []Class{{Setup: -1, Jobs: []int64{1}}}}, ">= 0"},
		{"too many machines", Instance{M: MaxMachines + 1, Classes: []Class{{Setup: 1, Jobs: []int64{1}}}}, "limit"},
		{"overflow load", Instance{M: 1, Classes: []Class{{Setup: MaxTotalLoad, Jobs: []int64{1}}}}, "overflow"},
		{"m*N too large", Instance{M: 1 << 30, Classes: []Class{{Setup: 1 << 40, Jobs: []int64{1}}}}, "magnitude"},
	}
	for _, c := range cases {
		err := c.in.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid instance", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	in := twoClassInstance()
	cp := in.Clone()
	cp.Classes[0].Jobs[0] = 99
	cp.M = 7
	if in.Classes[0].Jobs[0] != 3 || in.M != 2 {
		t.Error("Clone aliases original data")
	}
}

func TestVariantString(t *testing.T) {
	if Splittable.String() != "P|split,setup=s_i|Cmax" {
		t.Errorf("split = %q", Splittable.String())
	}
	if Preemptive.Short() != "preemptive" {
		t.Errorf("pmtn short = %q", Preemptive.Short())
	}
	if NonPreemptive.Short() != "nonpreemptive" {
		t.Errorf("nonp short = %q", NonPreemptive.Short())
	}
	if len(Variants) != 3 {
		t.Error("Variants must list all three flavors")
	}
}

// buildSimpleSchedule places both classes on machine 0 and one job on
// machine 1:  m0: [s0][j0,0][j0,1]  m1: [s1][j1,0].
func buildSimpleSchedule(in *Instance, v Variant) *Schedule {
	s := &Schedule{Variant: v}
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(in.Classes[0].Setup))
	b.Place(SlotJob, 0, 0, R(in.Classes[0].Jobs[0]))
	b.Place(SlotJob, 0, 1, R(in.Classes[0].Jobs[1]))
	s.AddMachine(b.Slots())
	b = NewMachineBuilder()
	b.Place(SlotSetup, 1, -1, R(in.Classes[1].Setup))
	b.Place(SlotJob, 1, 0, R(in.Classes[1].Jobs[0]))
	s.AddMachine(b.Slots())
	return s
}

func TestValidateAcceptsFeasible(t *testing.T) {
	in := twoClassInstance()
	for _, v := range Variants {
		s := buildSimpleSchedule(in, v)
		if err := s.Validate(in); err != nil {
			t.Errorf("%s: %v", v.Short(), err)
		}
		if got := s.Makespan(); !got.Equal(R(9)) {
			t.Errorf("%s: makespan %s, want 9", v.Short(), got)
		}
	}
}

func TestValidateCatchesMissingWork(t *testing.T) {
	in := twoClassInstance()
	s := buildSimpleSchedule(in, NonPreemptive)
	s.Runs[1].Slots = s.Runs[1].Slots[:1] // drop job (1,0)
	if err := s.Validate(in); err == nil || !strings.Contains(err.Error(), "received") {
		t.Errorf("missing work not caught: %v", err)
	}
}

func TestValidateCatchesMissingSetup(t *testing.T) {
	in := twoClassInstance()
	s := &Schedule{Variant: NonPreemptive}
	b := NewMachineBuilder()
	b.Place(SlotJob, 0, 0, R(3)) // job with no setup
	s.AddMachine(b.Slots())
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "setup") {
		t.Errorf("missing setup not caught: %v", err)
	}
}

func TestValidateAllowsZeroSetupClassWithoutSetup(t *testing.T) {
	in := &Instance{M: 1, Classes: []Class{{Setup: 0, Jobs: []int64{4}}}}
	s := &Schedule{Variant: NonPreemptive}
	b := NewMachineBuilder()
	b.Place(SlotJob, 0, 0, R(4))
	s.AddMachine(b.Slots())
	if err := s.Validate(in); err != nil {
		t.Errorf("zero-setup class rejected: %v", err)
	}
}

func TestValidateCatchesInterposedClass(t *testing.T) {
	in := twoClassInstance()
	s := &Schedule{Variant: NonPreemptive}
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(2))
	b.Place(SlotSetup, 1, -1, R(1))
	b.Place(SlotJob, 0, 0, R(3)) // class-0 job after class-1 setup
	b.Place(SlotJob, 0, 1, R(4))
	s.AddMachine(b.Slots())
	b = NewMachineBuilder()
	b.Place(SlotSetup, 1, -1, R(1))
	b.Place(SlotJob, 1, 0, R(5))
	s.AddMachine(b.Slots())
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "not contiguous") {
		t.Errorf("interposed class not caught: %v", err)
	}
}

func TestValidateCatchesSplitSetup(t *testing.T) {
	in := twoClassInstance()
	s := buildSimpleSchedule(in, NonPreemptive)
	// shorten the class-0 setup (as if split)
	s.Runs[0].Slots[0].End = R(1)
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "split") {
		t.Errorf("split setup not caught: %v", err)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	in := twoClassInstance()
	s := buildSimpleSchedule(in, NonPreemptive)
	s.Runs[0].Slots[2].Start = R(4) // overlaps slot ending at 5
	s.Runs[0].Slots[2].End = R(8)
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap not caught: %v", err)
	}
}

func TestValidateCatchesTooManyMachines(t *testing.T) {
	in := twoClassInstance()
	s := buildSimpleSchedule(in, NonPreemptive)
	s.AddRun(5, nil)
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "machines") {
		t.Errorf("machine overuse not caught: %v", err)
	}
}

func TestValidateCatchesNonPreemptiveSplit(t *testing.T) {
	in := &Instance{M: 2, Classes: []Class{{Setup: 1, Jobs: []int64{6}}}}
	s := &Schedule{Variant: NonPreemptive}
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(1))
	b.Place(SlotJob, 0, 0, R(3))
	s.AddMachine(b.Slots())
	b = NewMachineBuilder()
	b.PlaceAt(SlotSetup, 0, -1, R(3), R(1))
	b.Place(SlotJob, 0, 0, R(3))
	s.AddMachine(b.Slots())
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "pieces") {
		t.Errorf("nonpreemptive split not caught: %v", err)
	}
	// The same schedule is fine preemptively (pieces do not overlap).
	s.Variant = Preemptive
	if err := s.Validate(in); err != nil {
		t.Errorf("preemptive version wrongly rejected: %v", err)
	}
}

func TestValidateCatchesParallelSelfExecution(t *testing.T) {
	in := &Instance{M: 2, Classes: []Class{{Setup: 1, Jobs: []int64{6}}}}
	s := &Schedule{Variant: Preemptive}
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(1))
	b.Place(SlotJob, 0, 0, R(3))
	s.AddMachine(b.Slots())
	b = NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(1))
	b.Place(SlotJob, 0, 0, R(3)) // runs [1,4) on both machines
	s.AddMachine(b.Slots())
	err := s.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "parallel") {
		t.Errorf("self-parallel job not caught: %v", err)
	}
	// Splittable allows exactly this.
	s.Variant = Splittable
	if err := s.Validate(in); err != nil {
		t.Errorf("splittable version wrongly rejected: %v", err)
	}
}

func TestValidateMultiMachineRuns(t *testing.T) {
	// 4 machines, one class, 4 jobs of length 5: a run of count 4 with one
	// job slot each would multiply a single job's work; instead use a run
	// for identical per-machine layouts with different jobs -> must use
	// count 1.  Here we test the splittable accounting with count>1: one
	// job of length 12 split across 3 machines in parallel.
	in := &Instance{M: 4, Classes: []Class{{Setup: 2, Jobs: []int64{12}}}}
	s := &Schedule{Variant: Splittable}
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(2))
	b.Place(SlotJob, 0, 0, R(4))
	s.AddRun(3, b.Slots())
	if err := s.Validate(in); err != nil {
		t.Errorf("run accounting broken: %v", err)
	}
	// Preemptive must reject multi-machine runs with jobs.
	s.Variant = Preemptive
	if err := s.Validate(in); err == nil {
		t.Error("preemptive multi-machine run accepted")
	}
}

func TestMachineBuilder(t *testing.T) {
	b := NewMachineBuilder()
	b.Place(SlotSetup, 0, -1, R(2))
	b.PlaceAt(SlotJob, 0, 0, R(5), R(3))
	if got := b.Top(); !got.Equal(R(8)) {
		t.Errorf("Top = %s", got)
	}
	if len(b.Slots()) != 2 {
		t.Errorf("slots = %d", len(b.Slots()))
	}
	// Zero-length placement is dropped but can advance the cursor.
	b.PlaceAt(SlotJob, 0, 0, R(10), Rat{})
	if got := b.Top(); !got.Equal(R(10)) {
		t.Errorf("Top after zero placement = %s", got)
	}
	if len(b.Slots()) != 2 {
		t.Error("zero-length slot emitted")
	}
	b.Reset()
	if len(b.Slots()) != 0 || !b.Top().IsZero() {
		t.Error("Reset incomplete")
	}
}

func TestScheduleSummary(t *testing.T) {
	in := twoClassInstance()
	s := buildSimpleSchedule(in, NonPreemptive)
	if got := s.MachineCount(); got != 2 {
		t.Errorf("MachineCount = %d", got)
	}
	if got := s.SetupCount(); got != 2 {
		t.Errorf("SetupCount = %d", got)
	}
	if got := s.NumSlots(); got != 5 {
		t.Errorf("NumSlots = %d", got)
	}
	if !strings.Contains(s.String(), "makespan=9") {
		t.Errorf("String = %q", s.String())
	}
}
