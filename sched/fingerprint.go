package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Canonical is the canonical form of an instance: jobs sorted within each
// class, classes sorted by (setup, size, job multiset), together with the
// permutations linking canonical indices back to the original indexing.
//
// Two instances that differ only by a permutation of their classes or of
// the jobs inside a class have byte-identical canonical instances, so the
// canonical form is the right domain for fingerprinting and result
// caching.  The stored permutations let a schedule computed in one index
// space be translated into the other (see FromCanonical and ToCanonical).
type Canonical struct {
	// Instance is the canonical instance (a deep copy; the original is
	// never aliased or modified).
	Instance *Instance
	// ClassOf maps a canonical class index to its original class index.
	ClassOf []int
	// JobOf maps a canonical (class, job position) to the job's original
	// index within the original class ClassOf[class].
	JobOf [][]int

	classInv []int   // original class index -> canonical class index
	jobInv   [][]int // canonical class -> original job index -> canonical position
}

// Canonicalize computes the canonical form of the instance in
// O(n log n) time.  The receiver is left untouched.  The canonical
// order itself is defined by CanonicalView.Bind (the single comparator);
// this entry point materializes the deep copy and the permutations.
func (in *Instance) Canonicalize() *Canonical {
	var v CanonicalView
	v.Bind(in)
	return v.Materialize()
}

// Fingerprint returns the hex SHA-256 of the canonical instance encoding.
func (c *Canonical) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(c.Instance.M)
	put(int64(len(c.Instance.Classes)))
	for i := range c.Instance.Classes {
		cl := &c.Instance.Classes[i]
		put(cl.Setup)
		put(int64(len(cl.Jobs)))
		for _, t := range cl.Jobs {
			put(t)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns a canonical-form hash of the instance: invariant
// under any permutation of the classes and of the jobs within a class,
// and sensitive to the machine count, every setup time, and every job
// processing time.  It hashes through a CanonicalView, so no canonical
// deep copy is materialized.
func (in *Instance) Fingerprint() string {
	var v CanonicalView
	v.Bind(in)
	return v.Fingerprint()
}

// Equal reports whether the two instances are identical (same machine
// count, classes and job order; not merely permutation-equivalent).
func (in *Instance) Equal(o *Instance) bool {
	if o == nil || in.M != o.M || len(in.Classes) != len(o.Classes) {
		return false
	}
	for i := range in.Classes {
		a, b := &in.Classes[i], &o.Classes[i]
		if a.Setup != b.Setup || len(a.Jobs) != len(b.Jobs) {
			return false
		}
		for j := range a.Jobs {
			if a.Jobs[j] != b.Jobs[j] {
				return false
			}
		}
	}
	return true
}

// FromCanonical translates a schedule over the canonical instance into an
// equivalent schedule over the original instance, rewriting every slot's
// class and job indices.  The input is not modified.
func (c *Canonical) FromCanonical(s *Schedule) *Schedule {
	return remapSchedule(s, func(class, job int) (int, int) {
		oc := c.ClassOf[class]
		if job < 0 {
			return oc, job
		}
		return oc, c.JobOf[class][job]
	})
}

// ToCanonical translates a schedule over the original instance into an
// equivalent schedule over the canonical instance.  The input is not
// modified.
func (c *Canonical) ToCanonical(s *Schedule) *Schedule {
	return remapSchedule(s, func(class, job int) (int, int) {
		k := c.classInv[class]
		if job < 0 {
			return k, job
		}
		return k, c.jobInv[k][job]
	})
}

func remapSchedule(s *Schedule, f func(class, job int) (int, int)) *Schedule {
	out := &Schedule{Variant: s.Variant, T: s.T, Runs: make([]MachineRun, len(s.Runs))}
	for i := range s.Runs {
		slots := make([]Slot, len(s.Runs[i].Slots))
		for j, sl := range s.Runs[i].Slots {
			sl.Class, sl.Job = f(sl.Class, sl.Job)
			slots[j] = sl
		}
		out.Runs[i] = MachineRun{Count: s.Runs[i].Count, Slots: slots}
	}
	return out
}
