package sched

import (
	"math/rand"
	"testing"
)

// TestValidatorCatchesMutations is a failure-injection test: it takes
// valid schedules, applies a random corrupting mutation, and asserts the
// validator rejects the result.  A validator that misses corruptions would
// silently void every guarantee the test suite appears to establish.
func TestValidatorCatchesMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))

	type mutation struct {
		name  string
		apply func(*Schedule, *rand.Rand) bool // false = not applicable
	}
	mutations := []mutation{
		{"shrink job piece", func(s *Schedule, rng *rand.Rand) bool {
			sl := randomSlot(s, rng, SlotJob)
			if sl == nil {
				return false
			}
			sl.End = sl.Start.Add(sl.Len().Half())
			return !sl.Len().IsZero()
		}},
		{"stretch setup", func(s *Schedule, rng *rand.Rand) bool {
			sl := randomSlot(s, rng, SlotSetup)
			if sl == nil {
				return false
			}
			sl.End = sl.End.AddInt(1)
			return true
		}},
		{"drop setup", func(s *Schedule, rng *rand.Rand) bool {
			for ri := range s.Runs {
				for si := range s.Runs[ri].Slots {
					if s.Runs[ri].Slots[si].Kind == SlotSetup {
						// Setup must enable a following job for the drop
						// to be a real corruption.
						if si+1 < len(s.Runs[ri].Slots) && s.Runs[ri].Slots[si+1].Kind == SlotJob {
							s.Runs[ri].Slots = append(s.Runs[ri].Slots[:si], s.Runs[ri].Slots[si+1:]...)
							return true
						}
					}
				}
			}
			return false
		}},
		{"overlap slots", func(s *Schedule, rng *rand.Rand) bool {
			for ri := range s.Runs {
				if len(s.Runs[ri].Slots) >= 2 {
					s.Runs[ri].Slots[1].Start = s.Runs[ri].Slots[0].Start
					return true
				}
			}
			return false
		}},
		{"duplicate machine run", func(s *Schedule, rng *rand.Rand) bool {
			if len(s.Runs) == 0 || len(s.Runs[0].Slots) == 0 {
				return false
			}
			hasJob := false
			for _, sl := range s.Runs[0].Slots {
				if sl.Kind == SlotJob {
					hasJob = true
				}
			}
			if !hasJob {
				return false
			}
			s.Runs = append(s.Runs, s.Runs[0]) // duplicates job work
			return true
		}},
		{"negative start", func(s *Schedule, rng *rand.Rand) bool {
			if len(s.Runs) == 0 || len(s.Runs[0].Slots) == 0 {
				return false
			}
			s.Runs[0].Slots[0].Start = R(-1)
			return true
		}},
		{"wrong class index", func(s *Schedule, rng *rand.Rand) bool {
			sl := randomSlot(s, rng, SlotJob)
			if sl == nil {
				return false
			}
			sl.Class = 9999
			return true
		}},
	}

	for iter := 0; iter < 200; iter++ {
		in := randomValidInstance(rng)
		s := scheduleSequentially(in)
		if err := s.Validate(in); err != nil {
			t.Fatalf("iter %d: baseline invalid: %v", iter, err)
		}
		mut := mutations[iter%len(mutations)]
		cp := cloneSchedule(s)
		if !mut.apply(cp, rng) {
			continue
		}
		if err := cp.Validate(in); err == nil {
			t.Fatalf("iter %d: mutation %q not caught\noriginal: %v\nmutated:  %v",
				iter, mut.name, s, cp)
		}
	}
}

func randomValidInstance(rng *rand.Rand) *Instance {
	in := &Instance{M: int64(1 + rng.Intn(4))}
	c := 1 + rng.Intn(4)
	for i := 0; i < c; i++ {
		cl := Class{Setup: 1 + rng.Int63n(9)} // nonzero so drop-setup matters
		for j := 0; j <= rng.Intn(3); j++ {
			cl.Jobs = append(cl.Jobs, 2+rng.Int63n(10))
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// scheduleSequentially builds the trivial feasible schedule: classes in
// order, spread across machines batch by batch.
func scheduleSequentially(in *Instance) *Schedule {
	s := &Schedule{Variant: NonPreemptive}
	builders := make([]*MachineBuilder, in.M)
	for u := range builders {
		builders[u] = NewMachineBuilder()
	}
	u := 0
	for i := range in.Classes {
		b := builders[u]
		b.Place(SlotSetup, i, -1, R(in.Classes[i].Setup))
		for j, tj := range in.Classes[i].Jobs {
			b.Place(SlotJob, i, j, R(tj))
		}
		u = (u + 1) % len(builders)
	}
	for _, b := range builders {
		if len(b.Slots()) > 0 {
			s.AddMachine(b.Slots())
		}
	}
	return s
}

func cloneSchedule(s *Schedule) *Schedule {
	out := &Schedule{Variant: s.Variant, T: s.T}
	for _, r := range s.Runs {
		out.Runs = append(out.Runs, MachineRun{
			Count: r.Count,
			Slots: append([]Slot(nil), r.Slots...),
		})
	}
	return out
}

func randomSlot(s *Schedule, rng *rand.Rand, kind SlotKind) *Slot {
	var cands []*Slot
	for ri := range s.Runs {
		for si := range s.Runs[ri].Slots {
			if s.Runs[ri].Slots[si].Kind == kind {
				cands = append(cands, &s.Runs[ri].Slots[si])
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[rng.Intn(len(cands))]
}
