package sched

import (
	"fmt"
	"sort"
)

// ValidationError describes a feasibility violation found by Validate.
type ValidationError struct {
	Machine int // index into Runs
	Slot    int // index into the run's slots, or -1
	Reason  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("sched: invalid schedule (run %d, slot %d): %s", e.Machine, e.Slot, e.Reason)
}

func vErr(run, slot int, format string, args ...any) error {
	return &ValidationError{Machine: run, Slot: slot, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks that the schedule is a feasible solution for the given
// instance under the schedule's Variant.  It verifies:
//
//   - at most in.M machines are used;
//   - slots on each machine are sorted, non-overlapping and start at >= 0;
//   - setup slots have exactly the class setup length and are never split;
//   - every job slot is immediately preceded on its machine by a setup or
//     job slot of the same class ending exactly where it starts (batch
//     rule; classes with setup 0 are exempt);
//   - every job receives exactly its processing time in total (counting
//     run multiplicities);
//   - non-preemptive: every job is a single contiguous slot on one machine;
//   - preemptive: pieces of one job never overlap in time, and runs that
//     contain job slots have multiplicity 1.
//
// The batch rule here is slightly stricter than the paper's model (which
// would allow idle time between a setup and the jobs it enables); all
// constructions in this module satisfy the stricter contiguous rule, and
// the stricter rule implies the paper's.
func (s *Schedule) Validate(in *Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if mc := s.MachineCount(); mc > in.M {
		return vErr(-1, -1, "uses %d machines but instance has m=%d", mc, in.M)
	}

	// Global job indexing for work accounting.
	offsets := make([]int, len(in.Classes)+1)
	for i := range in.Classes {
		offsets[i+1] = offsets[i] + len(in.Classes[i].Jobs)
	}
	n := offsets[len(in.Classes)]
	done := make([]Rat, n)

	type interval struct{ start, end Rat }
	var pieces [][]interval
	if s.Variant == Preemptive {
		pieces = make([][]interval, n)
	}
	slotCount := make([]int64, n)

	for ri := range s.Runs {
		run := &s.Runs[ri]
		if run.Count <= 0 {
			return vErr(ri, -1, "run has non-positive machine count %d", run.Count)
		}
		hasJob := false
		var prev *Slot
		for si := range run.Slots {
			sl := &run.Slots[si]
			if sl.Class < 0 || sl.Class >= len(in.Classes) {
				return vErr(ri, si, "class index %d out of range", sl.Class)
			}
			cls := &in.Classes[sl.Class]
			if sl.Start.Sign() < 0 {
				return vErr(ri, si, "slot starts before time 0")
			}
			if sl.End.Cmp(sl.Start) <= 0 {
				return vErr(ri, si, "slot has non-positive length")
			}
			if prev != nil && sl.Start.Cmp(prev.End) < 0 {
				return vErr(ri, si, "slot at %s overlaps previous slot ending %s", sl.Start, prev.End)
			}
			switch sl.Kind {
			case SlotSetup:
				if sl.Job != -1 {
					return vErr(ri, si, "setup slot has job index %d", sl.Job)
				}
				if sl.Len().CmpInt(cls.Setup) != 0 {
					return vErr(ri, si, "setup slot length %s != s_%d = %d (setups may not be split)", sl.Len(), sl.Class, cls.Setup)
				}
			case SlotJob:
				hasJob = true
				if sl.Job < 0 || sl.Job >= len(cls.Jobs) {
					return vErr(ri, si, "job index %d out of range for class %d", sl.Job, sl.Class)
				}
				// Batch rule.
				if cls.Setup > 0 {
					if prev == nil {
						return vErr(ri, si, "job of class %d scheduled with no preceding setup", sl.Class)
					}
					if prev.Class != sl.Class || !prev.End.Equal(sl.Start) {
						return vErr(ri, si, "job of class %d at %s not contiguous with a class-%d setup or job (prev: class %d ending %s)",
							sl.Class, sl.Start, sl.Class, prev.Class, prev.End)
					}
				}
				g := offsets[sl.Class] + sl.Job
				add := sl.Len().MulInt(run.Count)
				done[g] = done[g].Add(add)
				slotCount[g] += run.Count
				if pieces != nil {
					pieces[g] = append(pieces[g], interval{sl.Start, sl.End})
				}
			default:
				return vErr(ri, si, "unknown slot kind %d", sl.Kind)
			}
			prev = sl
		}
		if hasJob && run.Count > 1 && s.Variant != Splittable {
			return vErr(ri, -1, "%s schedule uses a multi-machine run (count=%d) containing job slots", s.Variant.Short(), run.Count)
		}
	}

	// Work accounting.
	for c := range in.Classes {
		for j, t := range in.Classes[c].Jobs {
			g := offsets[c] + j
			if done[g].CmpInt(t) != 0 {
				return vErr(-1, -1, "job (%d,%d) received %s of %d processing units", c, j, done[g], t)
			}
			if s.Variant == NonPreemptive && slotCount[g] != 1 {
				return vErr(-1, -1, "non-preemptive job (%d,%d) scheduled in %d pieces", c, j, slotCount[g])
			}
		}
	}

	// Preemptive: no two pieces of a job may overlap in time.
	if pieces != nil {
		for g := range pieces {
			ivs := pieces[g]
			if len(ivs) < 2 {
				continue
			}
			sort.Slice(ivs, func(a, b int) bool { return ivs[a].start.Less(ivs[b].start) })
			for k := 1; k < len(ivs); k++ {
				if ivs[k].start.Less(ivs[k-1].end) {
					return vErr(-1, -1, "preemptive job %d runs in parallel with itself: [%s,%s) overlaps [%s,%s)",
						g, ivs[k-1].start, ivs[k-1].end, ivs[k].start, ivs[k].end)
				}
			}
		}
	}
	return nil
}

// CheckMakespanAtMost verifies Makespan() <= bound and returns a
// descriptive error otherwise.
func (s *Schedule) CheckMakespanAtMost(bound Rat) error {
	if mk := s.Makespan(); bound.Less(mk) {
		return fmt.Errorf("sched: makespan %s exceeds bound %s", mk, bound)
	}
	return nil
}
