package sched

import "fmt"

// SlotKind distinguishes setup slots from job slots.
type SlotKind uint8

const (
	// SlotSetup is a (non-preemptible) setup occupying [Start, End).
	SlotSetup SlotKind = iota
	// SlotJob is a job piece occupying [Start, End).
	SlotJob
)

// Slot is one contiguous occupation of a machine: either a setup of some
// class or a piece of a job.  Slots are half-open intervals [Start, End).
type Slot struct {
	Kind  SlotKind
	Class int // class index into Instance.Classes
	Job   int // job index within the class; -1 for setups
	Start Rat
	End   Rat
}

// Len returns End - Start.
func (s *Slot) Len() Rat { return s.End.Sub(s.Start) }

// MachineRun is a group of Count machines with identical slot layouts.
//
// Runs with Count > 1 are how the splittable solver represents schedules
// on very large machine counts in O(n + c) space ("machine configurations
// with associated multiplicities" in the paper, Section 3.2): each machine
// in the run processes its own piece of the stated shape, so a job slot of
// length L in a run of Count k accounts for k*L units of that job's work.
type MachineRun struct {
	Count int64
	Slots []Slot
}

// Schedule is a complete schedule: an ordered list of machine runs.
// Machines not covered by any run are idle.
type Schedule struct {
	// Variant records which feasibility rules the schedule was built for.
	Variant Variant
	// T is the makespan guess the schedule was built against (the dual
	// approximation bound is 3/2*T).  Zero if not applicable.
	T Rat
	// Runs holds the machine configurations in machine order.
	Runs []MachineRun
}

// MachineCount returns the total number of machines used by runs
// (including machines whose slot list is empty).
func (s *Schedule) MachineCount() int64 {
	var m int64
	for i := range s.Runs {
		m += s.Runs[i].Count
	}
	return m
}

// Makespan returns the maximum slot end time across all machines.
func (s *Schedule) Makespan() Rat {
	var mk Rat
	for i := range s.Runs {
		for j := range s.Runs[i].Slots {
			if e := s.Runs[i].Slots[j].End; mk.Less(e) {
				mk = e
			}
		}
	}
	return mk
}

// NumSlots returns the total number of distinct slots (not multiplied by
// run counts).
func (s *Schedule) NumSlots() int {
	n := 0
	for i := range s.Runs {
		n += len(s.Runs[i].Slots)
	}
	return n
}

// SetupCount returns the total number of setup slots scheduled, counting
// run multiplicities.
func (s *Schedule) SetupCount() int64 {
	var n int64
	for i := range s.Runs {
		for j := range s.Runs[i].Slots {
			if s.Runs[i].Slots[j].Kind == SlotSetup {
				n += s.Runs[i].Count
			}
		}
	}
	return n
}

// AddMachine appends a single machine with the given slots and returns its
// index in Runs.
func (s *Schedule) AddMachine(slots []Slot) int {
	s.Runs = append(s.Runs, MachineRun{Count: 1, Slots: slots})
	return len(s.Runs) - 1
}

// AddRun appends a run of count identical machines.
func (s *Schedule) AddRun(count int64, slots []Slot) {
	if count <= 0 {
		return
	}
	s.Runs = append(s.Runs, MachineRun{Count: count, Slots: slots})
}

// String returns a short human-readable summary.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{%s, machines=%d, slots=%d, makespan=%s}",
		s.Variant.Short(), s.MachineCount(), s.NumSlots(), s.Makespan())
}

// MachineBuilder incrementally builds the slot list of one machine,
// tracking the running top-of-machine time.
type MachineBuilder struct {
	slots []Slot
	top   Rat
}

// NewMachineBuilder returns a builder starting at time 0.
func NewMachineBuilder() *MachineBuilder { return &MachineBuilder{} }

// Top returns the current top-of-machine time (end of the last slot).
func (b *MachineBuilder) Top() Rat { return b.top }

// PlaceAt places a slot of the given length starting at the given time,
// which must be >= the current top.  Zero-length slots are dropped.
func (b *MachineBuilder) PlaceAt(kind SlotKind, class, job int, start, length Rat) {
	if length.Sign() <= 0 {
		if length.Sign() < 0 {
			panic("sched: negative slot length")
		}
		if start.Cmp(b.top) > 0 {
			b.top = start
		}
		return
	}
	if start.Cmp(b.top) < 0 {
		panic(fmt.Sprintf("sched: slot placed at %s below machine top %s", start, b.top))
	}
	end := start.Add(length)
	b.slots = append(b.slots, Slot{Kind: kind, Class: class, Job: job, Start: start, End: end})
	b.top = end
}

// Place appends a slot directly on top of the machine.
func (b *MachineBuilder) Place(kind SlotKind, class, job int, length Rat) {
	b.PlaceAt(kind, class, job, b.top, length)
}

// Slots returns the accumulated slots.
func (b *MachineBuilder) Slots() []Slot { return b.slots }

// Reset clears the builder for reuse.
func (b *MachineBuilder) Reset() {
	b.slots = nil
	b.top = Rat{}
}
