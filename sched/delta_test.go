package sched

import (
	"strings"
	"testing"
)

func deltaTestInstance() *Instance {
	return &Instance{M: 3, Classes: []Class{
		{Setup: 4, Jobs: []int64{7, 2, 5}},
		{Setup: 1, Jobs: []int64{3}},
	}}
}

func TestDeltaApplyHappyPaths(t *testing.T) {
	in := deltaTestInstance()
	n := in.N()

	apply := func(d Delta) int64 {
		t.Helper()
		nn, err := d.Apply(in)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if got := in.N(); got != nn {
			t.Fatalf("%s: returned N %d, instance N %d", d, nn, got)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s left instance invalid: %v", d, err)
		}
		return nn
	}

	n2 := apply(Delta{Op: DeltaAddJobs, Class: 0, Jobs: []int64{6, 1}})
	if n2 != n+7 {
		t.Fatalf("add_jobs: N %d, want %d", n2, n+7)
	}
	n3 := apply(Delta{Op: DeltaRemoveJob, Class: 0, Job: 1}) // removes the 2
	if n3 != n2-2 {
		t.Fatalf("remove_job: N %d, want %d", n3, n2-2)
	}
	// Removal is order-preserving.
	if got := in.Classes[0].Jobs[1]; got != 5 {
		t.Fatalf("remove_job shifted wrong: jobs[1] = %d, want 5", got)
	}
	n4 := apply(Delta{Op: DeltaSetSetup, Class: 1, Setup: 9})
	if n4 != n3+8 {
		t.Fatalf("set_setup: N %d, want %d", n4, n3+8)
	}
	n5 := apply(Delta{Op: DeltaAddClass, Setup: 2, Jobs: []int64{4}})
	if n5 != n4+6 || len(in.Classes) != 3 {
		t.Fatalf("add_class: N %d (want %d), classes %d", n5, n4+6, len(in.Classes))
	}
	n6 := apply(Delta{Op: DeltaRemoveClass, Class: 1})
	if n6 != n5-(9+3) || len(in.Classes) != 2 {
		t.Fatalf("remove_class: N %d (want %d), classes %d", n6, n5-12, len(in.Classes))
	}
	// The former class 2 slid down to index 1.
	if in.Classes[1].Setup != 2 {
		t.Fatalf("remove_class not order-preserving: classes[1].Setup = %d", in.Classes[1].Setup)
	}
	if n7 := apply(Delta{Op: DeltaSetMachines, M: 7}); n7 != n6 || in.M != 7 {
		t.Fatalf("set_machines: N %d (want %d), m %d", n7, n6, in.M)
	}
}

func TestDeltaApplyRejections(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"unknown op", Delta{Op: "bogus"}, "unknown delta op"},
		{"class out of range", Delta{Op: DeltaAddJobs, Class: 5, Jobs: []int64{1}}, "out of range"},
		{"negative class", Delta{Op: DeltaSetSetup, Class: -1, Setup: 0}, "out of range"},
		{"empty jobs", Delta{Op: DeltaAddJobs, Class: 0}, "at least one job"},
		{"bad job", Delta{Op: DeltaAddJobs, Class: 0, Jobs: []int64{0}}, "must be >= 1"},
		{"job out of range", Delta{Op: DeltaRemoveJob, Class: 0, Job: 9}, "out of range"},
		{"last job", Delta{Op: DeltaRemoveJob, Class: 1, Job: 0}, "last job"},
		{"negative setup", Delta{Op: DeltaSetSetup, Class: 0, Setup: -1}, "must be >= 0"},
		{"add_class bad setup", Delta{Op: DeltaAddClass, Setup: -2, Jobs: []int64{1}}, "must be >= 0"},
		{"zero machines", Delta{Op: DeltaSetMachines, M: 0}, "at least one machine"},
		{"too many machines", Delta{Op: DeltaSetMachines, M: MaxMachines + 1}, "exceeds supported limit"},
		{"load overflow", Delta{Op: DeltaAddJobs, Class: 0, Jobs: []int64{MaxTotalLoad}}, "overflows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := deltaTestInstance()
			before := in.Clone()
			n := in.N()
			nn, err := tc.d.Apply(in)
			if err == nil {
				t.Fatalf("%s: accepted, want rejection", tc.d)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q, want substring %q", tc.d, err, tc.want)
			}
			if nn != n || !in.Equal(before) {
				t.Fatalf("%s: rejected delta mutated the instance", tc.d)
			}
		})
	}

	t.Run("last class", func(t *testing.T) {
		in := &Instance{M: 1, Classes: []Class{{Setup: 1, Jobs: []int64{1}}}}
		if _, err := (Delta{Op: DeltaRemoveClass, Class: 0}).Apply(in); err == nil {
			t.Fatal("removing the last class was accepted")
		}
	})

	t.Run("machine load product", func(t *testing.T) {
		in := &Instance{M: 1, Classes: []Class{{Setup: 0, Jobs: []int64{MaxTotalLoad / 2}}}}
		if _, err := (Delta{Op: DeltaSetMachines, M: MaxMachines}).Apply(in); err == nil {
			t.Fatal("m*N over the product limit was accepted")
		}
	})
}

func TestDeltaLoadShift(t *testing.T) {
	in := deltaTestInstance()
	cases := []struct {
		d                Delta
		wantAdd, wantRem int64
	}{
		{Delta{Op: DeltaAddJobs, Class: 0, Jobs: []int64{6, 1}}, 7, 0},
		{Delta{Op: DeltaRemoveJob, Class: 0, Job: 0}, 0, 7},
		{Delta{Op: DeltaSetSetup, Class: 0, Setup: 10}, 6, 0},
		{Delta{Op: DeltaSetSetup, Class: 0, Setup: 1}, 0, 3},
		{Delta{Op: DeltaAddClass, Setup: 2, Jobs: []int64{4}}, 6, 0},
		{Delta{Op: DeltaRemoveClass, Class: 0}, 0, 4 + 14},
		{Delta{Op: DeltaSetMachines, M: 5}, 0, 0},
	}
	for _, tc := range cases {
		add, rem := tc.d.LoadShift(in)
		if add != tc.wantAdd || rem != tc.wantRem {
			t.Errorf("%s: LoadShift = (%d, %d), want (%d, %d)", tc.d, add, rem, tc.wantAdd, tc.wantRem)
		}
	}
}

// TestDeltaLoadShiftMatchesApply asserts the seed-shifting contract: for
// any accepted delta, added-removed equals the actual change of N.
func TestDeltaLoadShiftMatchesApply(t *testing.T) {
	in := deltaTestInstance()
	deltas := []Delta{
		{Op: DeltaAddJobs, Class: 1, Jobs: []int64{8}},
		{Op: DeltaSetSetup, Class: 0, Setup: 11},
		{Op: DeltaAddClass, Setup: 3, Jobs: []int64{2, 2}},
		{Op: DeltaRemoveJob, Class: 0, Job: 2},
		{Op: DeltaSetSetup, Class: 2, Setup: 0},
		{Op: DeltaRemoveClass, Class: 1},
	}
	for _, d := range deltas {
		add, rem := d.LoadShift(in)
		before := in.N()
		after, err := d.Apply(in)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if after-before != add-rem {
			t.Fatalf("%s: N moved by %d, LoadShift said %d", d, after-before, add-rem)
		}
	}
}
