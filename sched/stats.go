package sched

import (
	"encoding/json"
	"fmt"
)

// Stats summarizes a schedule's resource usage.
type Stats struct {
	// Makespan is the schedule's makespan.
	Makespan Rat
	// Machines is the number of machines carrying at least one slot.
	Machines int64
	// SetupTime is the total time spent on setups across all machines.
	SetupTime Rat
	// WorkTime is the total job processing time across all machines.
	WorkTime Rat
	// IdleTime is Machines*Makespan - SetupTime - WorkTime.
	IdleTime Rat
	// Setups counts setup slots (with run multiplicities).
	Setups int64
	// SetupsPerClass counts setups by class.
	SetupsPerClass []int64
}

// Utilization returns WorkTime / (Machines * Makespan) in [0, 1].
func (st *Stats) Utilization() float64 {
	denom := st.Makespan.Float64() * float64(st.Machines)
	if denom <= 0 {
		return 0
	}
	return st.WorkTime.Float64() / denom
}

// SetupOverhead returns SetupTime / (SetupTime + WorkTime) in [0, 1].
func (st *Stats) SetupOverhead() float64 {
	total := st.SetupTime.Add(st.WorkTime).Float64()
	if total <= 0 {
		return 0
	}
	return st.SetupTime.Float64() / total
}

// ComputeStats aggregates usage statistics for the schedule; numClasses
// sizes the per-class setup counts (pass in.NumClasses()).
func (s *Schedule) ComputeStats(numClasses int) Stats {
	st := Stats{
		Makespan:       s.Makespan(),
		SetupsPerClass: make([]int64, numClasses),
	}
	for i := range s.Runs {
		run := &s.Runs[i]
		if len(run.Slots) == 0 {
			continue
		}
		st.Machines += run.Count
		for j := range run.Slots {
			sl := &run.Slots[j]
			length := sl.Len().MulInt(run.Count)
			if sl.Kind == SlotSetup {
				st.SetupTime = st.SetupTime.Add(length)
				st.Setups += run.Count
				if sl.Class >= 0 && sl.Class < numClasses {
					st.SetupsPerClass[sl.Class] += run.Count
				}
			} else {
				st.WorkTime = st.WorkTime.Add(length)
			}
		}
	}
	st.IdleTime = st.Makespan.MulInt(st.Machines).Sub(st.SetupTime).Sub(st.WorkTime)
	return st
}

// MarshalJSON encodes a Rat as the string "p/q" (or "p" for integers).
func (r Rat) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON decodes "p/q" strings, "p" strings and plain JSON numbers.
func (r *Rat) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		// Accept bare integers for convenience.
		var n int64
		if err2 := json.Unmarshal(data, &n); err2 == nil {
			*r = R(n)
			return nil
		}
		return err
	}
	var p, q int64
	if _, err := fmt.Sscanf(s, "%d/%d", &p, &q); err == nil {
		if q == 0 {
			return fmt.Errorf("sched: zero denominator in %q", s)
		}
		*r = RatOf(p, q)
		return nil
	}
	if _, err := fmt.Sscanf(s, "%d", &p); err == nil {
		*r = R(p)
		return nil
	}
	return fmt.Errorf("sched: cannot parse rational %q", s)
}

// slotJSON is the serialized slot form.
type slotJSON struct {
	Kind  string `json:"kind"` // "setup" or "job"
	Class int    `json:"class"`
	Job   int    `json:"job,omitempty"`
	Start Rat    `json:"start"`
	End   Rat    `json:"end"`
}

type runJSON struct {
	Count int64      `json:"count"`
	Slots []slotJSON `json:"slots"`
}

type scheduleJSON struct {
	Variant string    `json:"variant"`
	T       Rat       `json:"guess,omitempty"`
	Runs    []runJSON `json:"machines"`
}

// MarshalJSON serializes the schedule with exact rational time stamps.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{Variant: s.Variant.Short(), T: s.T}
	for i := range s.Runs {
		rj := runJSON{Count: s.Runs[i].Count}
		for _, sl := range s.Runs[i].Slots {
			kind := "job"
			if sl.Kind == SlotSetup {
				kind = "setup"
			}
			rj.Slots = append(rj.Slots, slotJSON{
				Kind: kind, Class: sl.Class, Job: sl.Job, Start: sl.Start, End: sl.End,
			})
		}
		out.Runs = append(out.Runs, rj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a schedule serialized by MarshalJSON.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	switch in.Variant {
	case "splittable":
		s.Variant = Splittable
	case "preemptive":
		s.Variant = Preemptive
	case "nonpreemptive":
		s.Variant = NonPreemptive
	default:
		return fmt.Errorf("sched: unknown variant %q", in.Variant)
	}
	s.T = in.T
	s.Runs = nil
	for _, rj := range in.Runs {
		run := MachineRun{Count: rj.Count}
		for _, sj := range rj.Slots {
			kind := SlotJob
			job := sj.Job
			if sj.Kind == "setup" {
				kind = SlotSetup
				job = -1
			}
			run.Slots = append(run.Slots, Slot{
				Kind: kind, Class: sj.Class, Job: job, Start: sj.Start, End: sj.End,
			})
		}
		s.Runs = append(s.Runs, run)
	}
	return nil
}
