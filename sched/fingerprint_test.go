package sched

import (
	"math/rand"
	"testing"
)

func fpTestInstance() *Instance {
	return &Instance{
		M: 5,
		Classes: []Class{
			{Setup: 4, Jobs: []int64{7, 2, 5, 2}},
			{Setup: 1, Jobs: []int64{3, 3}},
			{Setup: 0, Jobs: []int64{9}},
			{Setup: 4, Jobs: []int64{2, 7, 5, 2}}, // permutation twin of class 0
			{Setup: 12, Jobs: []int64{1, 1, 1, 6}},
		},
	}
}

// permute returns a deep copy with classes shuffled and the jobs inside
// every class shuffled.
func permute(in *Instance, rng *rand.Rand) *Instance {
	out := in.Clone()
	rng.Shuffle(len(out.Classes), func(i, j int) {
		out.Classes[i], out.Classes[j] = out.Classes[j], out.Classes[i]
	})
	for i := range out.Classes {
		jobs := out.Classes[i].Jobs
		rng.Shuffle(len(jobs), func(a, b int) { jobs[a], jobs[b] = jobs[b], jobs[a] })
	}
	return out
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	in := fpTestInstance()
	want := in.Fingerprint()
	if len(want) != 64 {
		t.Fatalf("fingerprint %q is not 64 hex chars", want)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := permute(in, rng)
		if got := p.Fingerprint(); got != want {
			t.Fatalf("trial %d: permuted fingerprint %s != original %s\npermuted: %+v",
				trial, got, want, p)
		}
		if !p.Canonicalize().Instance.Equal(in.Canonicalize().Instance) {
			t.Fatalf("trial %d: canonical instances differ", trial)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpTestInstance()
	want := base.Fingerprint()
	mutations := []struct {
		name string
		mut  func(*Instance)
	}{
		{"machines", func(in *Instance) { in.M++ }},
		{"setup", func(in *Instance) { in.Classes[1].Setup++ }},
		{"zero setup", func(in *Instance) { in.Classes[2].Setup = 2 }},
		{"job size", func(in *Instance) { in.Classes[0].Jobs[2]++ }},
		{"extra job", func(in *Instance) { in.Classes[3].Jobs = append(in.Classes[3].Jobs, 1) }},
		{"drop class", func(in *Instance) { in.Classes = in.Classes[:len(in.Classes)-1] }},
		{"split class", func(in *Instance) {
			in.Classes[4].Jobs = in.Classes[4].Jobs[:2]
			in.Classes = append(in.Classes, Class{Setup: 12, Jobs: []int64{1, 6}})
		}},
	}
	for _, m := range mutations {
		in := base.Clone()
		m.mut(in)
		if got := in.Fingerprint(); got == want {
			t.Errorf("%s: fingerprint unchanged after mutation", m.name)
		}
	}
}

func TestFingerprintDistinguishesEqualTotals(t *testing.T) {
	// Same total work and setup, different partition into classes.
	a := &Instance{M: 2, Classes: []Class{{Setup: 3, Jobs: []int64{4, 4}}, {Setup: 3, Jobs: []int64{8}}}}
	b := &Instance{M: 2, Classes: []Class{{Setup: 3, Jobs: []int64{4, 8}}, {Setup: 3, Jobs: []int64{4}}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different instances share a fingerprint")
	}
}

// serialSchedule builds the trivial feasible non-preemptive schedule that
// runs every class (setup, then all jobs) back to back on one machine.
func serialSchedule(in *Instance) *Schedule {
	b := NewMachineBuilder()
	for ci := range in.Classes {
		cl := &in.Classes[ci]
		if cl.Setup > 0 {
			b.Place(SlotSetup, ci, -1, R(cl.Setup))
		}
		for j, tj := range cl.Jobs {
			b.Place(SlotJob, ci, j, R(tj))
		}
	}
	s := &Schedule{Variant: NonPreemptive}
	s.AddMachine(b.Slots())
	return s
}

func TestCanonicalScheduleRemap(t *testing.T) {
	orig := fpTestInstance()
	rng := rand.New(rand.NewSource(7))
	perm := permute(orig, rng)

	// A schedule for the permuted instance, translated to canonical space,
	// must be feasible for the canonical instance...
	canonPerm := perm.Canonicalize()
	s := serialSchedule(perm)
	if err := s.Validate(perm); err != nil {
		t.Fatalf("serial schedule invalid: %v", err)
	}
	cs := canonPerm.ToCanonical(s)
	if err := cs.Validate(canonPerm.Instance); err != nil {
		t.Fatalf("canonical-space schedule invalid: %v", err)
	}

	// ...and translatable from canonical space into ANY permutation-twin's
	// index space, since the canonical instances coincide.
	canonOrig := orig.Canonicalize()
	if !canonOrig.Instance.Equal(canonPerm.Instance) {
		t.Fatal("canonical instances of permutation twins differ")
	}
	os := canonOrig.FromCanonical(cs)
	if err := os.Validate(orig); err != nil {
		t.Fatalf("remapped schedule invalid for twin: %v", err)
	}
	if !os.Makespan().Equal(s.Makespan()) {
		t.Fatalf("remap changed makespan: %s != %s", os.Makespan(), s.Makespan())
	}

	// Round trip within one index space is the identity.
	rt := canonPerm.FromCanonical(cs)
	if err := rt.Validate(perm); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	for ri := range s.Runs {
		for si := range s.Runs[ri].Slots {
			if s.Runs[ri].Slots[si] != rt.Runs[ri].Slots[si] {
				t.Fatalf("round trip changed slot %d/%d: %+v != %+v",
					ri, si, s.Runs[ri].Slots[si], rt.Runs[ri].Slots[si])
			}
		}
	}
}

func TestCanonicalDoesNotAliasInput(t *testing.T) {
	in := fpTestInstance()
	c := in.Canonicalize()
	before := c.Fingerprint()
	in.Classes[0].Jobs[0] = 999
	in.M = 1
	if got := c.Fingerprint(); got != before {
		t.Fatal("mutating the input changed an existing canonical form")
	}
}
