package sched

import (
	"cmp"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"slices"
)

// CanonicalView is a reusable, allocation-frugal view of an instance's
// canonical form: the class order and per-class job sort permutations,
// computed into buffers that later Bind calls reuse.  It answers the
// questions the serving hot path asks on every request — the canonical
// fingerprint, canonical-form equality against a cached instance, and
// schedule remapping — without materializing the canonical deep copy
// that Canonicalize builds (Materialize still produces one on demand,
// and Canonicalize itself is implemented on top of it so there is a
// single canonical-order comparator).
//
// A view is bound to one instance at a time and borrows that instance's
// memory; the instance must not be mutated while the view is in use.
// Not safe for concurrent use.
type CanonicalView struct {
	in  *Instance
	ord []int // canonical class index -> original class index

	sortedJobs [][]int64 // per original class: job sizes ascending
	jobOf      [][]int   // per original class: canonical pos -> original job index

	jobsArena []int64
	idxArena  []int
	buf       []byte // canonical encoding, reused by Fingerprint
}

// Bind computes the canonical view of in, reusing the view's buffers.
// It runs the same stable sorts as Canonicalize, so every downstream
// answer (fingerprint, materialized canonical form, remapping) is
// identical to the deep-copy path's.
func (v *CanonicalView) Bind(in *Instance) {
	v.in = in
	c := len(in.Classes)
	njob := 0
	for i := range in.Classes {
		njob += len(in.Classes[i].Jobs)
	}
	if cap(v.ord) < c {
		v.ord = make([]int, c)
		v.sortedJobs = make([][]int64, c)
		v.jobOf = make([][]int, c)
	}
	v.ord = v.ord[:c]
	v.sortedJobs = v.sortedJobs[:c]
	v.jobOf = v.jobOf[:c]
	if cap(v.jobsArena) < njob {
		v.jobsArena = make([]int64, njob)
		v.idxArena = make([]int, njob)
	}
	off := 0
	for i := range in.Classes {
		jobs := in.Classes[i].Jobs
		idx := v.idxArena[off : off+len(jobs) : off+len(jobs)]
		for j := range idx {
			idx[j] = j
		}
		slices.SortStableFunc(idx, func(a, b int) int { return cmp.Compare(jobs[a], jobs[b]) })
		sj := v.jobsArena[off : off+len(jobs) : off+len(jobs)]
		for pos, oj := range idx {
			sj[pos] = jobs[oj]
		}
		v.jobOf[i] = idx
		v.sortedJobs[i] = sj
		off += len(jobs)
	}
	for i := range v.ord {
		v.ord[i] = i
	}
	slices.SortStableFunc(v.ord, func(a, b int) int {
		ca, cb := &in.Classes[a], &in.Classes[b]
		if ca.Setup != cb.Setup {
			return cmp.Compare(ca.Setup, cb.Setup)
		}
		ja, jb := v.sortedJobs[a], v.sortedJobs[b]
		if len(ja) != len(jb) {
			return cmp.Compare(len(ja), len(jb))
		}
		return slices.Compare(ja, jb)
	})
}

// Fingerprint returns the canonical fingerprint of the bound instance —
// byte-identical to Canonicalize().Fingerprint(), computed over the
// view's reusable encoding buffer.
func (v *CanonicalView) Fingerprint() string {
	in := v.in
	need := 8 * (2 + len(in.Classes))
	for i := range in.Classes {
		need += 8 * (1 + len(in.Classes[i].Jobs))
	}
	if cap(v.buf) < need {
		v.buf = make([]byte, need)
	}
	b := v.buf[:0]
	b = binary.LittleEndian.AppendUint64(b, uint64(in.M))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(in.Classes)))
	for _, oi := range v.ord {
		b = binary.LittleEndian.AppendUint64(b, uint64(in.Classes[oi].Setup))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(v.sortedJobs[oi])))
		for _, t := range v.sortedJobs[oi] {
			b = binary.LittleEndian.AppendUint64(b, uint64(t))
		}
	}
	v.buf = b[:0]
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// MatchesCanonical reports whether the bound instance's canonical form
// equals ci, which must itself be a canonical instance (as stored by a
// result cache).  Equivalent to Materialize().Instance.Equal(ci) without
// building the copy.
func (v *CanonicalView) MatchesCanonical(ci *Instance) bool {
	in := v.in
	if ci == nil || in.M != ci.M || len(in.Classes) != len(ci.Classes) {
		return false
	}
	for k, oi := range v.ord {
		cl := &ci.Classes[k]
		if in.Classes[oi].Setup != cl.Setup || !slices.Equal(v.sortedJobs[oi], cl.Jobs) {
			return false
		}
	}
	return true
}

// FromCanonical translates a schedule over the canonical instance into
// an equivalent schedule over the bound original instance, like
// Canonical.FromCanonical.  The input is not modified; the output shares
// nothing with the view's buffers.
func (v *CanonicalView) FromCanonical(s *Schedule) *Schedule {
	return remapSchedule(s, func(class, job int) (int, int) {
		oc := v.ord[class]
		if job < 0 {
			return oc, job
		}
		return oc, v.jobOf[oc][job]
	})
}

// CanonicalInstance builds just the canonical deep copy of the bound
// instance — Materialize without the permutation tables.  Enough for
// callers that only need the canonical form itself (solver preparation,
// cache storage) and remap through the view directly.
func (v *CanonicalView) CanonicalInstance() *Instance {
	in := v.in
	ci := &Instance{M: in.M, Classes: make([]Class, len(in.Classes))}
	for k, oi := range v.ord {
		ci.Classes[k] = Class{
			Setup: in.Classes[oi].Setup,
			Jobs:  slices.Clone(v.sortedJobs[oi]),
		}
	}
	return ci
}

// Unbind drops the view's reference to the bound instance (the reusable
// buffers are kept), so a pooled view does not pin the last instance it
// served.  The view must be Bound again before use.
func (v *CanonicalView) Unbind() { v.in = nil }

// Materialize builds the full Canonical of the bound instance: the deep
// canonical copy plus both permutation directions.  Nothing in the
// result aliases the view's buffers, so the view may be rebound (or the
// result retained) freely.
func (v *CanonicalView) Materialize() *Canonical {
	in := v.in
	c := len(in.Classes)
	ci := &Instance{M: in.M, Classes: make([]Class, c)}
	jobOfCanon := make([][]int, c)
	classInv := make([]int, c)
	jobInv := make([][]int, c)
	for k, oi := range v.ord {
		ci.Classes[k] = Class{
			Setup: in.Classes[oi].Setup,
			Jobs:  slices.Clone(v.sortedJobs[oi]),
		}
		jobOfCanon[k] = slices.Clone(v.jobOf[oi])
		classInv[oi] = k
		inv := make([]int, len(jobOfCanon[k]))
		for pos, oj := range jobOfCanon[k] {
			inv[oj] = pos
		}
		jobInv[k] = inv
	}
	return &Canonical{
		Instance: ci,
		ClassOf:  slices.Clone(v.ord),
		JobOf:    jobOfCanon,
		classInv: classInv,
		jobInv:   jobInv,
	}
}
