package setupsched_test

import (
	"context"
	"testing"

	"setupsched"
	"setupsched/obs"
	"setupsched/schedgen"
)

// allocInstance is an n=1e4-job instance, the size the acceptance
// criteria pin the hot-path overhead measurements to.
func allocInstance() *setupsched.Solver {
	in := schedgen.Uniform(schedgen.Params{
		M: 64, Classes: 1250, JobsPer: 8, MaxSetup: 50, MaxJob: 100, Seed: 7,
	})
	s, err := setupsched.NewSolver(in)
	if err != nil {
		panic(err)
	}
	return s
}

// TestObservedSolveAllocsNoMoreThanBare is the regression test for the
// serve hot path's observer wiring: attaching a live metrics observer
// (the shared obs.ProbeCounter a server hangs on every solve) must not
// allocate more than a bare solve.  The option slice is built once, as
// the server does, so the per-solve cost is pure observer fan-out —
// which the solveConfig's inline buffers keep allocation-free.
func TestObservedSolveAllocsNoMoreThanBare(t *testing.T) {
	s := allocInstance()
	ctx := context.Background()
	var probes obs.Counter
	pc := &obs.ProbeCounter{C: &probes}
	metered := []setupsched.Option{setupsched.WithObserver(pc)}

	solve := func(opts []setupsched.Option) func() {
		return func() {
			if _, err := s.Solve(ctx, setupsched.Splittable, opts...); err != nil {
				t.Fatal(err)
			}
		}
	}
	bare := testing.AllocsPerRun(10, solve(nil))
	withObs := testing.AllocsPerRun(10, solve(metered))
	if withObs > bare {
		t.Fatalf("metered solve allocates %.1f/op, bare %.1f/op — observer wiring regressed", withObs, bare)
	}
	if probes.Load() == 0 {
		t.Fatal("probe counter never fired; observer was not attached")
	}
}

// TestSpanRecorderOnRealSolve wires an obs.SpanRecorder through the
// public Observer seam and checks the recorded tree attributes the
// solve's phases: a prepare span (bracketed around NewSolver), a search
// span with one probe child per dual test, and a build span.
func TestSpanRecorderOnRealSolve(t *testing.T) {
	in := schedgen.Uniform(schedgen.Params{
		M: 8, Classes: 40, JobsPer: 5, MaxSetup: 30, MaxJob: 60, Seed: 3,
	})
	rec := obs.NewSpanRecorder()
	stop := rec.StartPhase("prepare")
	s, err := setupsched.NewSolver(in)
	stop()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), setupsched.NonPreemptive, setupsched.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	root := rec.Root()
	if root.Algorithm != res.Algorithm {
		t.Errorf("root algorithm = %q, want %q", root.Algorithm, res.Algorithm)
	}
	if root.Child("prepare") == nil {
		t.Error("missing prepare span")
	}
	search := root.Child("search")
	if search == nil {
		t.Fatal("missing search span")
	}
	if search.Probes != res.Probes {
		t.Errorf("search probes = %d, want %d", search.Probes, res.Probes)
	}
	if len(search.Children) != res.Probes {
		t.Errorf("probe spans = %d, want %d", len(search.Children), res.Probes)
	}
	for i, p := range search.Children {
		if p.Outcome != "accept" && p.Outcome != "reject" {
			t.Errorf("probe %d has outcome %q", i, p.Outcome)
		}
	}
	if root.Child("build") == nil {
		t.Error("missing build span")
	}
	phases := obs.PhaseDurations(root)
	total := phases["prepare"] + phases["search"] + phases["build"]
	if total <= 0 {
		t.Errorf("phase durations sum to %v", total)
	}
}

// BenchmarkSolveObserverOverhead quantifies the instrumented hot path
// against the bare one at n=1e4 (the ≤5% acceptance bound; compare the
// two sub-benchmarks' ns/op).
func BenchmarkSolveObserverOverhead(b *testing.B) {
	s := allocInstance()
	ctx := context.Background()
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, setupsched.Splittable); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metered", func(b *testing.B) {
		var probes obs.Counter
		lat := obs.NewHistogram(obs.DefaultLatencyBuckets()...)
		pc := &obs.ProbeCounter{C: &probes}
		opts := []setupsched.Option{setupsched.WithObserver(pc)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, setupsched.Splittable, opts...); err != nil {
				b.Fatal(err)
			}
			lat.Observe(1e-3)
		}
	})
}
