package setupsched

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestProbeLimitZeroIsUnlimited pins the documented meaning of
// WithProbeLimit(0): identical to passing no limit at all, on a search
// that genuinely runs several probes.
func TestProbeLimitZeroIsUnlimited(t *testing.T) {
	solver, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range []Variant{Splittable, Preemptive, NonPreemptive} {
		want, err := solver.Solve(ctx, v)
		if err != nil {
			t.Fatalf("%v baseline: %v", v, err)
		}
		got, err := solver.Solve(ctx, v, WithProbeLimit(0))
		if err != nil {
			t.Fatalf("%v probe limit 0: %v", v, err)
		}
		if !got.Makespan.Equal(want.Makespan) || got.Probes != want.Probes {
			t.Fatalf("%v: WithProbeLimit(0) changed the solve: %d probes mk %s, want %d probes mk %s",
				v, got.Probes, got.Makespan, want.Probes, want.Makespan)
		}
	}
	// The DualTest guard must also treat 0 as "no limit requested".
	if _, _, err := solver.DualTest(ctx, NonPreemptive, Rat{}.AddInt(10), WithProbeLimit(0)); err != nil {
		t.Fatalf("DualTest rejected WithProbeLimit(0): %v", err)
	}
}

// TestEpsilonRangeBoundaries checks both open-interval boundaries exactly:
// 0 and 1 are rejected with a typed error carrying the value, while the
// closest representable values inside (0, 1) are accepted and still honor
// the certified-gap contract.
func TestEpsilonRangeBoundaries(t *testing.T) {
	solver, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, eps := range []float64{0, 1, math.Nextafter(0, -1), math.Nextafter(1, 2)} {
		_, err := solver.Solve(ctx, NonPreemptive, WithAlgorithm(EpsilonSearch), WithEpsilon(eps))
		var eErr *EpsilonRangeError
		if !errors.As(err, &eErr) {
			t.Fatalf("eps=%v: got %v, want *EpsilonRangeError", eps, err)
		}
		if eErr.Epsilon != eps {
			t.Fatalf("eps=%v: error reports %v", eps, eErr.Epsilon)
		}
	}
	for _, eps := range []float64{math.Nextafter(1, 0), 1e-9} {
		res, err := solver.Solve(ctx, NonPreemptive, WithAlgorithm(EpsilonSearch), WithEpsilon(eps))
		if err != nil {
			t.Fatalf("eps=%v rejected: %v", eps, err)
		}
		if err := Verify(solver.Instance(), NonPreemptive, res); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		// The search converts eps to a rational tolerance with denominator
		// 2^20, so the achievable relative gap floors there: assert
		// against max(eps, 2^-20), which is exact for any eps a caller
		// can distinguish and pins the documented floor for tinier ones.
		floor := math.Max(eps, 1.0/(1<<20))
		gap := res.Guess.Sub(res.LowerBound).Float64() / res.LowerBound.Float64()
		if gap > floor*1.0001 {
			t.Fatalf("eps=%v: certified relative gap %g exceeds %g", eps, gap, floor)
		}
	}
	// A coarse epsilon must not run more probes than a fine one.
	coarse, err := solver.Solve(ctx, NonPreemptive, WithAlgorithm(EpsilonSearch), WithEpsilon(math.Nextafter(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := solver.Solve(ctx, NonPreemptive, WithAlgorithm(EpsilonSearch), WithEpsilon(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Probes > fine.Probes {
		t.Fatalf("eps~1 ran %d probes, eps=1e-9 only %d", coarse.Probes, fine.Probes)
	}
}

// TestObserverNilIsIgnored pins that WithObserver(nil) is a no-op in any
// position, alone or surrounded by real observers.
func TestObserverNilIsIgnored(t *testing.T) {
	solver, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := solver.Solve(ctx, NonPreemptive, WithObserver(nil))
	if err != nil {
		t.Fatalf("nil observer alone: %v", err)
	}
	if len(res.Trace) != res.Probes {
		t.Fatalf("nil observer broke the trace: %d entries for %d probes", len(res.Trace), res.Probes)
	}
	a, b := &recordingObserver{}, &recordingObserver{}
	res, err = solver.Solve(ctx, NonPreemptive,
		WithObserver(nil), WithObserver(a), WithObserver(nil), WithObserver(b), WithObserver(nil))
	if err != nil {
		t.Fatalf("nil observers interleaved: %v", err)
	}
	if len(a.probes) != res.Probes || len(b.probes) != res.Probes {
		t.Fatalf("real observers saw %d/%d probes of %d", len(a.probes), len(b.probes), res.Probes)
	}
	if _, _, err := solver.DualTest(ctx, NonPreemptive, Rat{}.AddInt(10), WithObserver(nil)); err != nil {
		t.Fatalf("DualTest with nil observer: %v", err)
	}
}

// TestDualTestRejectsSearchOnlyOptions enumerates the search-only options
// against DualTest: every non-default algorithm and every positive probe
// limit must be rejected up front (not silently ignored), while the
// remaining options keep working.
func TestDualTestRejectsSearchOnlyOptions(t *testing.T) {
	solver, err := NewSolver(multiProbeInstance())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	T := Rat{}.AddInt(10)
	for _, opt := range []struct {
		name string
		o    Option
	}{
		{"WithAlgorithm(TwoApprox)", WithAlgorithm(TwoApprox)},
		{"WithAlgorithm(EpsilonSearch)", WithAlgorithm(EpsilonSearch)},
		{"WithAlgorithm(Exact32)", WithAlgorithm(Exact32)},
		{"WithProbeLimit(1)", WithProbeLimit(1)},
		{"WithProbeLimit(64)", WithProbeLimit(64)},
	} {
		_, _, err := solver.DualTest(ctx, NonPreemptive, T, opt.o)
		if err == nil {
			t.Fatalf("DualTest accepted %s", opt.name)
		}
		if !strings.Contains(err.Error(), "do not apply to DualTest") {
			t.Fatalf("DualTest %s: unexpected error %v", opt.name, err)
		}
	}
	// WithAlgorithm(Auto) requests the default and is therefore fine, as
	// are observers; a nil Option slot is skipped.
	obs := &recordingObserver{}
	acc, _, err := solver.DualTest(ctx, NonPreemptive, T, WithAlgorithm(Auto), WithObserver(obs), nil)
	if err != nil {
		t.Fatalf("DualTest rejected default-algorithm + observer: %v", err)
	}
	if len(obs.probes) != 1 {
		t.Fatalf("observer saw %d probes for one dual test", len(obs.probes))
	}
	_ = acc
}
